package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
)

// onReceive is the protocol stack's upcall at frame arrival: it matches
// the packet with the oldest posted input on its port, performs the
// ready- and dispose-time operations for the input's semantics and the
// device's buffering architecture, and completes the input after their
// latency has elapsed on the simulated clock.
func (g *Genie) onReceive(pkt netsim.Packet) {
	q := g.recvQ[pkt.Port]
	if len(q) == 0 {
		g.stats.Dropped++
		if g.tr != nil {
			g.tr.Instant(trace.CatOp, "input.unmatched", pkt.Length)
		}
		g.releasePacket(pkt)
		return
	}
	in := q[0]
	g.recvQ[pkt.Port] = q[1:]
	in.ArrivedAt = pkt.Arrival
	in.N = min(pkt.Length, in.Want)
	cpuBefore := in.ReceiverCPU // prepare-time work already spent

	var lat sim.Duration
	var err error
	switch {
	case pkt.Direct:
		lat, err = g.disposeEarlyDemux(in)
	case pkt.Overlay != nil:
		lat, err = g.disposePooled(in, pkt)
	case pkt.Outboard != nil:
		lat, err = g.disposeOutboard(in, pkt)
	default:
		err = fmt.Errorf("core: packet with no payload placement")
	}

	// Overlapped per-datagram CPU work: cell reassembly and interrupt
	// handling consume CPU without adding end-to-end latency (Figure 4).
	cells := (pkt.Length + cost.CellPayload - 1) / cost.CellPayload
	in.ReceiverCPU += g.model.PerCellCPU*float64(cells) + g.model.FixedKernelCPU

	// CPU pipelining: all post-arrival CPU work of this datagram keeps
	// the CPU busy, delaying the processing of any datagram that arrives
	// before it finishes. With a single datagram in flight, start equals
	// arrival and the end-to-end latency is unaffected.
	busy := sim.Duration(in.ReceiverCPU - cpuBefore)
	start := g.eng.Now().Max(g.cpuFreeAt)
	g.cpuFreeAt = start.Add(busy)
	done := start.Add(lat)

	if g.tr != nil && err == nil {
		g.tr.Emit(trace.Event{At: start, Dur: lat, Phase: trace.Complete, Cat: trace.CatOp,
			Name: "input.dispose", Sem: in.Sem.String(), Stage: StageDispose.String(),
			Port: in.Port, Bytes: in.N, Span: in.span})
	}
	g.eng.ScheduleAt(done, func() {
		in.Err = err
		in.Done = true
		in.CompletedAt = g.eng.Now()
		if g.tr != nil {
			g.tr.Emit(trace.Event{At: in.CompletedAt, Phase: trace.End, Cat: trace.CatOp, Name: "input",
				Sem: in.Sem.String(), Port: in.Port, Bytes: in.N, Span: in.span})
		}
		if in.onComplete != nil {
			in.onComplete(in)
		}
	})
}

// releasePacket frees device resources of an unmatched packet.
func (g *Genie) releasePacket(pkt netsim.Packet) {
	if pkt.Overlay != nil && g.nic.Pool() != nil {
		g.nic.Pool().Put(pkt.Overlay...)
	}
	if pkt.Outboard != nil {
		pkt.Outboard.Free()
	}
}

// disposeEarlyDemux implements the dispose column of Table 3: the
// payload was already DMAed into the posted buffer (the application's
// own pages for in-place semantics, a system or aligned buffer for copy,
// emulated copy, and move).
func (g *Genie) disposeEarlyDemux(in *InputOp) (sim.Duration, error) {
	p := in.proc
	n := in.N
	switch in.Sem {
	case Copy:
		if on, _ := g.checksumApplies(Copy); on {
			raw := make([]byte, n+checksumTrailerLen)
			in.kbuf.readAll(raw)
			data, sum := splitTrailer(raw)
			ch, _, verr := g.verifyCopyInput(in, data, sum)
			in.Addr = in.va
			lat := g.chargeSet(StageDispose, in.octx(), ch, &in.ReceiverCPU)
			in.kbuf.free()
			g.chargeSet(StageDispose, in.octx(), []charge{{cost.BufDeallocate, n}}, &in.ReceiverCPU)
			return lat, verr
		}
		if err := p.as.PokeBuf(in.va, in.kbuf.readBuf(n)); err != nil {
			in.kbuf.free()
			return 0, err
		}
		in.Addr = in.va
		lat := g.chargeSet(StageDispose, in.octx(), []charge{{cost.Copyout, n}}, &in.ReceiverCPU)
		// Buffer deallocation is deferred past app notification; it
		// costs CPU but no latency.
		in.kbuf.free()
		g.chargeSet(StageDispose, in.octx(), []charge{{cost.BufDeallocate, n}}, &in.ReceiverCPU)
		return lat, nil

	case EmulatedCopy:
		var verifyCh []charge
		if on, _ := g.checksumApplies(EmulatedCopy); on {
			// Verify in the system-side aligned buffer before swapping:
			// a failed checksum never reaches the application buffer,
			// preserving copy semantics (contrast ChecksumIntegrated
			// with copy semantics, which cannot).
			raw := readFrames(in.kbuf.frames, in.kbuf.off, n+checksumTrailerLen)
			data, sum := splitTrailer(raw)
			verifyCh = []charge{{cost.ChecksumRead, n}}
			if !checksumVerify(data, sum) {
				in.Addr = in.va
				lat := g.chargeSet(StageDispose, in.octx(), verifyCh, &in.ReceiverCPU)
				in.kbuf.free()
				g.chargeSet(StageDispose, in.octx(), []charge{{cost.BufDeallocate, n}}, &in.ReceiverCPU)
				return lat, ErrChecksum
			}
		}
		ch, err := g.emcopyDispose(in, in.kbuf.frames, in.kbuf.off, g.kpool)
		in.kbuf.frames = nil // ownership transferred by emcopyDispose, even on error
		if err != nil {
			return 0, err
		}
		in.Addr = in.va
		lat := g.chargeSet(StageDispose, in.octx(), append(verifyCh, ch...), &in.ReceiverCPU)
		g.chargeSet(StageDispose, in.octx(), []charge{{cost.BufDeallocate, n}}, &in.ReceiverCPU)
		return lat, nil

	case Share:
		g.unwireFrames(in.ref)
		in.ref.Unreference()
		in.Addr = in.va
		return g.chargeSet(StageDispose, in.octx(), []charge{
			{cost.Unwire, n}, {cost.Unreference, n},
		}, &in.ReceiverCPU), nil

	case EmulatedShare:
		in.ref.Unreference()
		in.Addr = in.va
		return g.chargeSet(StageDispose, in.octx(), []charge{{cost.Unreference, n}}, &in.ReceiverCPU), nil

	case Move:
		ch, err := g.buildRegionFromKernelBuffer(in, in.kbuf, n)
		if err != nil {
			return 0, err
		}
		return g.chargeSet(StageDispose, in.octx(), ch, &in.ReceiverCPU), nil

	case EmulatedMove:
		r, err := g.checkRegion(p, in.region, in.ref, in.Want)
		if err != nil {
			return 0, err
		}
		in.ref.Unreference()
		p.as.Reinstate(r)
		if err := r.MarkMovedIn(); err != nil {
			return 0, err
		}
		in.Region, in.Addr = r, r.Start()
		return g.chargeSet(StageDispose, in.octx(), []charge{
			{cost.RegionCheckUnrefReinstateMarkIn, n},
		}, &in.ReceiverCPU), nil

	case WeakMove:
		r, err := g.checkRegion(p, in.region, in.ref, in.Want)
		if err != nil {
			return 0, err
		}
		g.unwireFrames(in.ref)
		in.ref.Unreference()
		if err := r.MarkMovedIn(); err != nil {
			return 0, err
		}
		in.Region, in.Addr = r, r.Start()
		return g.chargeSet(StageDispose, in.octx(), []charge{
			{cost.RegionCheck, 0}, {cost.Unwire, n}, {cost.Unreference, n}, {cost.RegionMarkIn, 0},
		}, &in.ReceiverCPU), nil

	case EmulatedWeakMove:
		r, err := g.checkRegion(p, in.region, in.ref, in.Want)
		if err != nil {
			return 0, err
		}
		in.ref.Unreference()
		if err := r.MarkMovedIn(); err != nil {
			return 0, err
		}
		in.Region, in.Addr = r, r.Start()
		return g.chargeSet(StageDispose, in.octx(), []charge{
			{cost.RegionCheckUnrefMarkIn, n},
		}, &in.ReceiverCPU), nil
	}
	return 0, fmt.Errorf("%w: %v", ErrBadSemantics, in.Sem)
}

// disposePooled implements the ready and dispose columns of Table 4:
// the payload sits in overlay pages from the device pool, and both
// stages contribute to end-to-end latency.
func (g *Genie) disposePooled(in *InputOp, pkt netsim.Packet) (sim.Duration, error) {
	p := in.proc
	n := in.N
	pool := g.nic.Pool()
	lat := g.chargeSet(StageReady, in.octx(), []charge{
		{cost.OverlayAllocate, n}, {cost.Overlay, n},
	}, &in.ReceiverCPU)

	switch in.Sem {
	case Copy:
		data := mem.GatherFrames(pkt.Overlay, pkt.OverlayOff, n)
		if err := p.as.PokeBuf(in.va, data); err != nil {
			pool.Put(pkt.Overlay...)
			return 0, err
		}
		pool.Put(pkt.Overlay...)
		in.Addr = in.va
		lat += g.chargeSet(StageDispose, in.octx(), []charge{
			{cost.Copyout, n}, {cost.OverlayDeallocate, n},
		}, &in.ReceiverCPU)
		return lat, nil

	case EmulatedCopy:
		ch, err := g.emcopyDispose(in, pkt.Overlay, pkt.OverlayOff, pool)
		if err != nil {
			return 0, err
		}
		in.Addr = in.va
		ch = append(ch, charge{cost.OverlayDeallocate, n})
		return lat + g.chargeSet(StageDispose, in.octx(), ch, &in.ReceiverCPU), nil

	case Share, EmulatedShare:
		var ch []charge
		if in.Sem == Share {
			g.unwireFrames(in.ref)
			ch = append(ch, charge{cost.Unwire, n})
		}
		in.ref.Unreference()
		ch = append(ch, charge{cost.Unreference, n})
		moveCh, err := g.emcopyDispose(in, pkt.Overlay, pkt.OverlayOff, pool)
		if err != nil {
			return 0, err
		}
		in.Addr = in.va
		ch = append(ch, moveCh...)
		ch = append(ch, charge{cost.OverlayDeallocate, n})
		return lat + g.chargeSet(StageDispose, in.octx(), ch, &in.ReceiverCPU), nil

	case Move:
		ch, err := g.buildRegionFromOverlay(in, pkt, pool)
		if err != nil {
			return 0, err
		}
		return lat + g.chargeSet(StageDispose, in.octx(), ch, &in.ReceiverCPU), nil

	case EmulatedMove, WeakMove, EmulatedWeakMove:
		r, err := g.checkRegion(p, in.region, in.ref, in.Want)
		if err != nil {
			pool.Put(pkt.Overlay...)
			return 0, err
		}
		var ch []charge
		if in.Sem == WeakMove {
			g.unwireFrames(in.ref)
			ch = append(ch, charge{cost.Unwire, n})
			ch = append(ch, charge{cost.RegionCheck, 0}, charge{cost.Unreference, n})
		}
		in.ref.Unreference()
		// Swap the overlay pages into the (hidden) region, returning the
		// region's old pages to the device pool.
		ps := vm.Addr(g.pageSize())
		for i, f := range pkt.Overlay {
			old, err := p.as.KernelSwapPage(r.Start()+vm.Addr(i)*ps, f)
			if err != nil {
				pool.Put(pkt.Overlay[i:]...)
				return 0, err
			}
			if err := g.recycleFrame(pool, old); err != nil {
				return 0, err
			}
			g.stats.SwappedPages++
		}
		if in.Sem == EmulatedMove {
			p.as.Reinstate(r)
		}
		if err := r.MarkMovedIn(); err != nil {
			return 0, err
		}
		in.Region, in.Addr = r, r.Start()+vm.Addr(pkt.OverlayOff)
		switch in.Sem {
		case WeakMove:
			ch = append(ch, charge{cost.Swap, n}, charge{cost.RegionMarkIn, 0})
		default: // the fused emulated-move/emulated-weak-move dispose of Table 4
			ch = append(ch, charge{cost.RegionCheck, 0}, charge{cost.Unreference, n},
				charge{cost.Swap, n}, charge{cost.RegionMarkIn, 0})
		}
		ch = append(ch, charge{cost.OverlayDeallocate, n})
		return lat + g.chargeSet(StageDispose, in.octx(), ch, &in.ReceiverCPU), nil
	}
	return 0, fmt.Errorf("%w: %v", ErrBadSemantics, in.Sem)
}

// disposeOutboard implements Section 6.2.3: the payload is staged in
// adapter memory and DMAed into host buffers at dispose time, which
// gives strong integrity for every semantics — emulated copy needs no
// intermediate buffer at all and is handled much like emulated share.
func (g *Genie) disposeOutboard(in *InputOp, pkt netsim.Packet) (sim.Duration, error) {
	p := in.proc
	n := in.N
	ob := pkt.Outboard
	defer ob.Free()
	defer g.chargeSet(StageDispose, in.octx(), []charge{{cost.BufDeallocate, n}}, &in.ReceiverCPU)

	switch in.Sem {
	case Copy:
		kbuf, err := g.allocKernelBuffer(0, n)
		if err != nil {
			return 0, err
		}
		ob.DMAToHost(kbuf)
		if err := p.as.PokeBuf(in.va, kbuf.readBuf(n)); err != nil {
			kbuf.free()
			return 0, err
		}
		kbuf.free()
		in.Addr = in.va
		return g.chargeSet(StageDispose, in.octx(), []charge{
			{cost.BufAllocate, n}, {cost.OutboardDMA, n}, {cost.Copyout, n},
		}, &in.ReceiverCPU), nil

	case EmulatedCopy:
		ref, err := p.as.ReferenceRange(in.va, n, true)
		if err != nil {
			return 0, err
		}
		ob.DMAToHost(ref)
		ref.Unreference()
		in.Addr = in.va
		return g.chargeSet(StageDispose, in.octx(), []charge{
			{cost.Reference, n}, {cost.OutboardDMA, n}, {cost.Unreference, n},
		}, &in.ReceiverCPU), nil

	case Share, EmulatedShare:
		ob.DMAToHost(in.ref)
		ch := []charge{{cost.OutboardDMA, n}}
		if in.Sem == Share {
			g.unwireFrames(in.ref)
			ch = append(ch, charge{cost.Unwire, n})
		}
		in.ref.Unreference()
		ch = append(ch, charge{cost.Unreference, n})
		in.Addr = in.va
		return g.chargeSet(StageDispose, in.octx(), ch, &in.ReceiverCPU), nil

	case Move:
		kbuf, err := g.allocKernelBuffer(0, n)
		if err != nil {
			return 0, err
		}
		ob.DMAToHost(kbuf)
		ch, err := g.buildRegionFromKernelBuffer(in, kbuf, n)
		if err != nil {
			return 0, err
		}
		ch = append([]charge{{cost.BufAllocate, n}, {cost.OutboardDMA, n}}, ch...)
		return g.chargeSet(StageDispose, in.octx(), ch, &in.ReceiverCPU), nil

	case EmulatedMove, WeakMove, EmulatedWeakMove:
		ob.DMAToHost(in.ref)
		r, err := g.checkRegion(p, in.region, in.ref, in.Want)
		if err != nil {
			return 0, err
		}
		ch := []charge{{cost.OutboardDMA, n}}
		switch in.Sem {
		case EmulatedMove:
			in.ref.Unreference()
			p.as.Reinstate(r)
			ch = append(ch, charge{cost.RegionCheckUnrefReinstateMarkIn, n})
		case WeakMove:
			g.unwireFrames(in.ref)
			in.ref.Unreference()
			ch = append(ch, charge{cost.RegionCheck, 0}, charge{cost.Unwire, n},
				charge{cost.Unreference, n}, charge{cost.RegionMarkIn, 0})
		case EmulatedWeakMove:
			in.ref.Unreference()
			ch = append(ch, charge{cost.RegionCheckUnrefMarkIn, n})
		}
		if err := r.MarkMovedIn(); err != nil {
			return 0, err
		}
		in.Region, in.Addr = r, r.Start()
		return g.chargeSet(StageDispose, in.octx(), ch, &in.ReceiverCPU), nil
	}
	return 0, fmt.Errorf("%w: %v", ErrBadSemantics, in.Sem)
}

// emcopyDispose passes data from system-side pages (an aligned kernel
// buffer or overlay pages) to the application buffer with emulated copy
// semantics (Section 5.2): full pages are swapped; partially filled
// pages are copied out if the fill is below the reverse copyout
// threshold, otherwise completed from the application page and swapped.
// Ownership of the frames transfers to this function: consumed frames
// join the application's memory object, the rest return to pool.
func (g *Genie) emcopyDispose(in *InputOp, frames []*mem.Frame, frameOff int, pool *netsim.OverlayPool) ([]charge, error) {
	p := in.proc
	n := in.N
	ps := g.pageSize()
	va := in.va
	aligned := frameOff == int(va)%ps

	if !aligned {
		// Lack of alignment makes swapping impossible (Figure 2):
		// everything is copied out.
		g.stats.UnalignedInputs++
		g.stats.FullCopyouts++
		data := mem.GatherFrames(frames, frameOff, n)
		if err := p.as.PokeBuf(va, data); err != nil {
			pool.Put(frames...)
			return nil, err
		}
		pool.Put(frames...)
		return []charge{{cost.Copyout, n}}, nil
	}

	g.stats.AlignedInputs++
	var swapped, copied, reversed int
	consumed := make([]bool, len(frames))
	// fail returns unconsumed frames to the pool before surfacing a
	// mid-loop error, so a transiently failing copyout (injected
	// allocation faults) cannot leak overlay or kernel pool pages.
	fail := func(err error) ([]charge, error) {
		var left []*mem.Frame
		for fi, f := range frames {
			if !consumed[fi] {
				left = append(left, f)
			}
		}
		if len(left) > 0 {
			pool.Put(left...)
		}
		return nil, err
	}
	pageVA := vm.Addr(ps) * (va / vm.Addr(ps)) // first overlapping page
	for fi := 0; pageVA < va+vm.Addr(n); fi, pageVA = fi+1, pageVA+vm.Addr(ps) {
		dataStart := max64(va, pageVA)
		dataEnd := min64(va+vm.Addr(n), pageVA+vm.Addr(ps))
		d := int(dataEnd - dataStart)
		f := frames[fi]
		switch {
		case d == ps:
			old, err := p.as.KernelSwapPage(pageVA, f)
			if err != nil {
				return fail(err)
			}
			consumed[fi] = true
			if err := g.recycleFrame(pool, old); err != nil {
				return fail(err)
			}
			swapped += ps
			g.stats.SwappedPages++

		case d >= g.cfg.ReverseCopyoutThreshold:
			// Reverse copyout: complete the system page from the
			// application page, then swap (items 3 and 4 of Figure 2).
			head := int(dataStart - pageVA)
			tail := int(pageVA + vm.Addr(ps) - dataEnd)
			if head > 0 {
				buf, err := p.as.PeekBuf(pageVA, head)
				if err != nil {
					return fail(err)
				}
				f.WriteBuf(0, buf)
			}
			if tail > 0 {
				buf, err := p.as.PeekBuf(dataEnd, tail)
				if err != nil {
					return fail(err)
				}
				f.WriteBuf(ps-tail, buf)
			}
			old, err := p.as.KernelSwapPage(pageVA, f)
			if err != nil {
				return fail(err)
			}
			consumed[fi] = true
			if err := g.recycleFrame(pool, old); err != nil {
				return fail(err)
			}
			swapped += ps
			reversed += head + tail
			g.stats.ReverseCopyouts++
			g.stats.SwappedPages++

		default:
			// Short fill: plain copyout (item 1 of Figure 2).
			fo := int(dataStart - pageVA)
			if err := p.as.PokeBuf(dataStart, f.ReadBuf(fo, d)); err != nil {
				return fail(err)
			}
			copied += d
			g.stats.PartialCopyouts++
		}
	}
	var leftovers []*mem.Frame
	for fi, f := range frames {
		if !consumed[fi] {
			leftovers = append(leftovers, f)
		}
	}
	if len(leftovers) > 0 {
		pool.Put(leftovers...)
	}

	var ch []charge
	if swapped > 0 {
		ch = append(ch, charge{cost.Swap, swapped})
	}
	if reversed > 0 {
		ch = append(ch, charge{cost.Copyout, reversed})
	}
	if copied > 0 {
		ch = append(ch, charge{cost.Copyout, copied})
	}
	return ch, nil
}

// buildRegionFromKernelBuffer implements move-semantics input dispose
// with early demultiplexed or outboard buffering (Table 3): the system
// buffer's pages are zero-completed (protection: the application must
// not see another process's stale data), attached to a fresh region, and
// mapped moved in. Consumed kernel pool pages are replaced.
func (g *Genie) buildRegionFromKernelBuffer(in *InputOp, kbuf *kernelBuffer, n int) ([]charge, error) {
	p := in.proc
	ps := g.pageSize()
	k := (n + ps - 1) / ps
	frames := kbuf.frames[:k]
	leftover := kbuf.frames[k:]
	kbuf.frames = nil
	if len(leftover) > 0 {
		g.kpool.Put(leftover...)
	}

	zeroed := 0
	if tail := n % ps; tail != 0 {
		frames[k-1].ClearRange(tail, ps-tail)
		zeroed = ps - tail
	}
	obj := g.sys.NewKernelObject()
	for i, f := range frames {
		obj.InsertKernelPage(i, f)
	}
	r, err := p.as.MapObject(obj, k*ps, vm.MovedIn)
	g.sys.ReleaseKernelObject(obj)
	if err != nil {
		return nil, err
	}
	if err := g.refill(g.kpool, k); err != nil {
		return nil, err
	}
	in.Region, in.Addr = r, r.Start()
	return []charge{
		{cost.RegionCreate, 0}, {cost.ZeroComplete, zeroed},
		{cost.RegionFill, n}, {cost.RegionMap, n}, {cost.RegionMarkIn, 0},
	}, nil
}

// buildRegionFromOverlay implements move-semantics input dispose with
// pooled buffering (Table 4): overlay pages become the region's pages
// and the overlay pool is refilled with fresh frames.
func (g *Genie) buildRegionFromOverlay(in *InputOp, pkt netsim.Packet, pool *netsim.OverlayPool) ([]charge, error) {
	p := in.proc
	n := in.N
	ps := g.pageSize()
	frames := pkt.Overlay
	off := pkt.OverlayOff

	zeroed := 0
	if off > 0 {
		frames[0].ClearRange(0, off)
		zeroed += off
	}
	if end := (off + n) % ps; end != 0 {
		frames[len(frames)-1].ClearRange(end, ps-end)
		zeroed += ps - end
	}
	obj := g.sys.NewKernelObject()
	for i, f := range frames {
		obj.InsertKernelPage(i, f)
	}
	r, err := p.as.MapObject(obj, len(frames)*ps, vm.MovedIn)
	g.sys.ReleaseKernelObject(obj)
	if err != nil {
		return nil, err
	}
	if err := g.refill(pool, len(frames)); err != nil {
		return nil, err
	}
	in.Region, in.Addr = r, r.Start()+vm.Addr(off)
	return []charge{
		{cost.RegionCreate, 0}, {cost.ZeroComplete, zeroed},
		{cost.RegionFillOverlayRefill, n}, {cost.RegionMap, n}, {cost.RegionMarkIn, 0},
		{cost.OverlayDeallocate, n},
	}, nil
}

// readFrames materializes n bytes starting at off within the first
// frame (content-level paths: checksum verification).
func readFrames(frames []*mem.Frame, off, n int) []byte {
	return mem.GatherFrames(frames, off, n).Resolve()
}

func max64(a, b vm.Addr) vm.Addr {
	if a > b {
		return a
	}
	return b
}

func min64(a, b vm.Addr) vm.Addr {
	if a < b {
		return a
	}
	return b
}
