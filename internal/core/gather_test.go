package core

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/vm"
)

func TestGatherOutput(t *testing.T) {
	for _, sem := range []Semantics{Copy, EmulatedCopy, Share, EmulatedShare} {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			tb, err := NewTestbed(TestbedConfig{Buffering: netsim.EarlyDemux})
			if err != nil {
				t.Fatal(err)
			}
			sender := tb.A.Genie.NewProcess()
			receiver := tb.B.Genie.NewProcess()

			// A protocol header in one buffer, the payload in another.
			header := []byte("HDR{seq=42,len=8192}")
			payload := bytes.Repeat([]byte{0xF1}, 8192)
			hva, _ := sender.Brk(4096)
			pva, _ := sender.Brk(8192)
			if err := sender.Write(hva, header); err != nil {
				t.Fatal(err)
			}
			if err := sender.Write(pva, payload); err != nil {
				t.Fatal(err)
			}
			total := len(header) + len(payload)
			dst, _ := receiver.Brk(total + 4096)

			in, err := receiver.Input(1, sem, dst, total)
			if err != nil {
				t.Fatal(err)
			}
			out, err := sender.OutputV(1, sem, []Segment{
				{hva, len(header)}, {pva, len(payload)},
			})
			if err != nil {
				t.Fatal(err)
			}
			tb.Run()
			if out.Err != nil || in.Err != nil {
				t.Fatal(out.Err, in.Err)
			}
			got := make([]byte, total)
			if err := receiver.Read(in.Addr, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:len(header)], header) || !bytes.Equal(got[len(header):], payload) {
				t.Fatal("gathered datagram corrupted")
			}
		})
	}
}

// TestGatherIntegrity: with emulated copy, overwriting any segment after
// OutputV returns must not affect the transmitted datagram.
func TestGatherIntegrity(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Buffering: netsim.EarlyDemux})
	if err != nil {
		t.Fatal(err)
	}
	sender := tb.A.Genie.NewProcess()
	receiver := tb.B.Genie.NewProcess()
	const segLen = 4096
	a, _ := sender.Brk(segLen)
	b, _ := sender.Brk(segLen)
	origA := bytes.Repeat([]byte{0x0A}, segLen)
	origB := bytes.Repeat([]byte{0x0B}, segLen)
	if err := sender.Write(a, origA); err != nil {
		t.Fatal(err)
	}
	if err := sender.Write(b, origB); err != nil {
		t.Fatal(err)
	}
	dst, _ := receiver.Brk(2 * segLen)
	in, err := receiver.Input(1, EmulatedCopy, dst, 2*segLen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.OutputV(1, EmulatedCopy, []Segment{{a, segLen}, {b, segLen}}); err != nil {
		t.Fatal(err)
	}
	// Clobber both segments before the frame serializes.
	if err := sender.Write(a, bytes.Repeat([]byte{0xFF}, segLen)); err != nil {
		t.Fatal(err)
	}
	if err := sender.Write(b, bytes.Repeat([]byte{0xFF}, segLen)); err != nil {
		t.Fatal(err)
	}
	tb.Run()
	if in.Err != nil {
		t.Fatal(in.Err)
	}
	got := make([]byte, 2*segLen)
	if err := receiver.Read(in.Addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:segLen], origA) || !bytes.Equal(got[segLen:], origB) {
		t.Fatal("gather output lost integrity under overwrite (TCOW per segment broken)")
	}
	if tb.A.Sys.Stats().TCOWCopies != 2 {
		t.Errorf("TCOW copies = %d, want 2", tb.A.Sys.Stats().TCOWCopies)
	}
}

func TestGatherValidation(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Buffering: netsim.EarlyDemux})
	if err != nil {
		t.Fatal(err)
	}
	p := tb.A.Genie.NewProcess()
	va, _ := p.Brk(4096)
	if _, err := p.OutputV(1, Move, []Segment{{va, 10}}); err == nil {
		t.Error("system-allocated gather accepted")
	}
	if _, err := p.OutputV(1, Copy, nil); err == nil {
		t.Error("empty gather list accepted")
	}
	if _, err := p.OutputV(1, Copy, []Segment{{va, 0}}); err == nil {
		t.Error("zero-length segment accepted")
	}
	if _, err := p.OutputV(1, Semantics(77), []Segment{{va, 8}}); err == nil {
		t.Error("bogus semantics accepted")
	}
	// Single-segment gather degrades to plain Output.
	r, _ := tb.B.Genie.NewProcess().Input(1, Copy, mustBrk(t, tb.B.Genie.NewProcess(), 4096), 8)
	_ = r
	out, err := p.OutputV(1, Copy, []Segment{{va, 8}})
	if err != nil || out.Len != 8 {
		t.Errorf("single-segment gather: %v %v", out, err)
	}
}

func mustBrk(t *testing.T, p *Process, n int) vm.Addr {
	t.Helper()
	va, err := p.Brk(n)
	if err != nil {
		t.Fatal(err)
	}
	return va
}

// TestGatherShortConversion: a short gathered datagram converts to copy
// semantics like any other short output.
func TestGatherShortConversion(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Buffering: netsim.EarlyDemux})
	if err != nil {
		t.Fatal(err)
	}
	sender := tb.A.Genie.NewProcess()
	receiver := tb.B.Genie.NewProcess()
	hva, _ := sender.Brk(4096)
	pva, _ := sender.Brk(4096)
	if err := sender.Write(hva, []byte("hd")); err != nil {
		t.Fatal(err)
	}
	if err := sender.Write(pva, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	dst, _ := receiver.Brk(4096)
	in, err := receiver.Input(1, EmulatedCopy, dst, 9)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sender.OutputV(1, EmulatedCopy, []Segment{{hva, 2}, {pva, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converted() {
		t.Error("9-byte gather not converted to copy semantics")
	}
	tb.Run()
	got := make([]byte, 9)
	if err := receiver.Read(in.Addr, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hdpayload" {
		t.Fatalf("got %q", got)
	}
}
