package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

// ClusterConfig describes an N-host experimental setup: the same
// per-host configuration as the pairwise testbed, applied to every
// host of a topology, advanced by a sharded parallel engine.
type ClusterConfig struct {
	TestbedConfig
	// Topo names the hosts and which pairs may open channels. Its wire
	// parameters override the cost model's base link when nonzero.
	Topo topo.Spec
	// Workers is the goroutine count advancing engine shards per
	// synchronization window; values below 1 mean serial. Results are
	// bit-identical at any worker count.
	Workers int
}

// Cluster is an N-host setup: one engine shard, physical memory, VM,
// adapter, and Genie instance per host, all joined by a switch fabric
// whose fixed wire latency is the conservative lookahead.
type Cluster struct {
	Sim    *sim.Cluster
	Model  *cost.Model
	Fabric *netsim.Fabric
	Hosts  []*Host

	cfg      ClusterConfig
	injs     []*faults.Injector
	hostOf   map[*Genie]int
	allowed  map[[2]int]bool
	nextPort int
}

// NewCluster builds the topology: every host configured exactly like a
// pairwise-testbed host, attached to a shared fabric instead of a
// point-to-point link.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	var err error
	cfg.TestbedConfig, err = normalizeTestbedConfig(cfg.TestbedConfig)
	if err != nil {
		return nil, err
	}
	if err := cfg.Topo.Validate(); err != nil {
		return nil, fmt.Errorf("core: cluster: %w", err)
	}
	base := cfg.Model.Base()
	perByte, fixed := base.PerByte, base.Fixed
	if cfg.Topo.PerByteUS > 0 {
		perByte = cfg.Topo.PerByteUS
	}
	if cfg.Topo.FixedUS > 0 {
		fixed = cfg.Topo.FixedUS
	}
	simc, err := sim.NewCluster(cfg.Topo.Hosts, sim.Duration(fixed), cfg.Workers)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Sim:     simc,
		Model:   cfg.Model,
		cfg:     cfg,
		hostOf:  make(map[*Genie]int),
		allowed: make(map[[2]int]bool),
	}
	c.Fabric = netsim.NewFabric(perByte, fixed, simc.Post)
	for i := 0; i < cfg.Topo.Hosts; i++ {
		h, err := buildHost(fmt.Sprintf("host%d", i), simc.Shard(i), cfg.TestbedConfig)
		if err != nil {
			return nil, fmt.Errorf("core: cluster host %d: %w", i, err)
		}
		c.Fabric.Attach(simc.Shard(i), h.NIC)
		c.Hosts = append(c.Hosts, h)
		c.hostOf[h.Genie] = i
		// Each host draws faults from its own seed-derived stream: a
		// shared injector would consume its PRNG in shard execution
		// order, which the worker count must not influence.
		var inj *faults.Injector
		if cfg.Faults.Enabled() {
			spec := cfg.Faults
			spec.Seed = deriveSeed(cfg.Faults.Seed, i)
			if inj, err = faults.New(spec); err != nil {
				return nil, err
			}
			h.NIC.SetFaultInjector(inj)
			h.Phys.SetAllocFault(inj.FailAlloc)
		}
		c.injs = append(c.injs, inj)
	}
	for _, p := range cfg.Topo.Pairs {
		c.allowed[[2]int{p[0], p[1]}] = true
		c.allowed[[2]int{p[1], p[0]}] = true
	}
	return c, nil
}

// deriveSeed mixes a base seed with a host index (splitmix64 finalizer)
// so per-host fault streams are decorrelated but fully determined by
// the cluster seed.
func deriveSeed(seed uint64, host int) uint64 {
	z := seed + 0x9E3779B97F4A7C15*uint64(host+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Host returns host i.
func (c *Cluster) Host(i int) *Host { return c.Hosts[i] }

// Size returns the number of hosts.
func (c *Cluster) Size() int { return len(c.Hosts) }

// Workers returns the shard-advance worker count.
func (c *Cluster) Workers() int { return c.Sim.Workers() }

// Injector returns host i's fault injector, nil when faults are off.
func (c *Cluster) Injector(i int) *faults.Injector { return c.injs[i] }

// Reset returns the whole cluster object graph to its post-construction
// state without reallocating it: engine shards (clocks, wheels, arenas)
// and staged cross-posts rewind, the fabric forgets its routes and
// idles every egress port, and each host's physical memory, VM system,
// adapter, and Genie instance are rewound exactly as Testbed.Reset
// rewinds a pairwise host. The port allocator restarts at zero, so
// channels reopened on a recycled cluster get the identical (host,
// port) circuits a fresh cluster would assign — which is what makes a
// recycled cluster simulate bit-identically to a newly built one.
// Processes, endpoints, and reliable channels created before the Reset
// must not be used afterwards. Per-host fault injectors rewind last,
// mirroring Testbed.Reset: component resets (pool Reacquire, kernel
// pool rebuild) must never see injected failures, and the rewound PRNGs
// replay the identical per-host fault scripts.
func (c *Cluster) Reset() error {
	c.Sim.Reset()
	c.Fabric.Reset()
	c.nextPort = 0
	for i, h := range c.Hosts {
		h.Phys.Reset()
		h.Sys.Reset()
		if c.cfg.DemandPaging {
			h.Sys.EnableDemandPaging(0)
		}
		// NIC before Genie: the overlay pool was constructed before the
		// kernel pool, and identical frame assignment needs the same
		// allocation order.
		if err := h.NIC.Reset(); err != nil {
			return fmt.Errorf("core: reset cluster host %d: %w", i, err)
		}
		if err := h.Genie.Reset(); err != nil {
			return fmt.Errorf("core: reset cluster host %d: %w", i, err)
		}
	}
	for i, inj := range c.injs {
		if inj == nil {
			continue
		}
		inj.Reset()
		c.Hosts[i].NIC.SetFaultInjector(inj)
		c.Hosts[i].Phys.SetAllocFault(inj.FailAlloc)
	}
	return nil
}

// Run advances the whole cluster until no events remain on any shard,
// returning the final cluster time.
func (c *Cluster) Run() sim.Time { return c.Sim.Run() }

// Now returns the maximum clock value across shards.
func (c *Cluster) Now() sim.Time { return c.Sim.Now() }

// Connect opens a bidirectional windowed channel between processes a
// and b, whose hosts must be adjacent in the topology. It allocates a
// globally unique port pair and installs the fabric's virtual-circuit
// routes for both directions — this is the (host, port) binding that
// replaces the pairwise testbed's fixed peer assumption.
func (c *Cluster) Connect(a, b *Process, sem Semantics, bufSize, window int) (*Endpoint, *Endpoint, error) {
	ha, ok := c.hostOf[a.g]
	if !ok {
		return nil, nil, fmt.Errorf("core: cluster connect: process %q not on this cluster", a.g.Name())
	}
	hb, ok := c.hostOf[b.g]
	if !ok {
		return nil, nil, fmt.Errorf("core: cluster connect: process %q not on this cluster", b.g.Name())
	}
	if ha == hb {
		return nil, nil, fmt.Errorf("core: cluster connect: both processes on host %d", ha)
	}
	if !c.allowed[[2]int{ha, hb}] {
		return nil, nil, fmt.Errorf("core: cluster connect: topology has no pair (%d,%d)", ha, hb)
	}
	basePort := c.nextPort
	c.nextPort += 2
	// Endpoint a receives on basePort and sends to basePort+1; b the
	// reverse. Routes are keyed by the transmitting host.
	if err := c.Fabric.Route(ha, basePort+1, hb); err != nil {
		return nil, nil, err
	}
	if err := c.Fabric.Route(hb, basePort, ha); err != nil {
		return nil, nil, err
	}
	return NewChannel(a, b, basePort, sem, bufSize, window)
}

// ConnectReliable opens a reliable channel between processes a and b
// over the cluster fabric: the cluster-topology analogue of
// NewReliableChannel, with the same framing overhead (frames grow by
// the reliable header) and the same credit-flow-control-off discipline
// — a dropped frame would strand its credit, and the retransmit layer
// windows for itself. This is what lets closed-loop workloads run
// fault-armed on a multi-host topology and recover from pool-
// exhaustion drops.
func (c *Cluster) ConnectReliable(a, b *Process, sem Semantics, bufSize, window int, rcfg ReliableConfig) (*Reliable, *Reliable, error) {
	ea, eb, err := c.Connect(a, b, sem, bufSize+relHeaderLen, window)
	if err != nil {
		return nil, nil, err
	}
	ea.noCredits, eb.noCredits = true, true
	return newReliable(ea, rcfg), newReliable(eb, rcfg), nil
}
