package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/topo"
)

// TestClusterPairTransfer checks the smallest cluster — two hosts on a
// fabric — moves real data end to end with correct contents.
func TestClusterPairTransfer(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Topo: topo.Pair(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pa := c.Host(0).Genie.NewProcess()
	pb := c.Host(1).Genie.NewProcess()
	ea, eb, err := c.Connect(pa, pb, EmulatedCopy, 8192, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := ea.Send(payload); err != nil {
		t.Fatal(err)
	}
	c.Run()
	m, ok := eb.Recv()
	if !ok {
		t.Fatal("no message delivered")
	}
	if len(m.Data()) != len(payload) {
		t.Fatalf("delivered %d bytes, want %d", len(m.Data()), len(payload))
	}
	for i := range payload {
		if m.Data()[i] != payload[i] {
			t.Fatalf("payload mismatch at byte %d", i)
		}
	}
	if m.CompletedAt() <= 0 {
		t.Fatal("delivery at time zero")
	}
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterConnectValidation pins the topology-enforcement errors.
func TestClusterConnectValidation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Topo: topo.Ring(4), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p0 := c.Host(0).Genie.NewProcess()
	p0b := c.Host(0).Genie.NewProcess()
	p2 := c.Host(2).Genie.NewProcess()
	if _, _, err := c.Connect(p0, p2, Copy, 4096, 1); err == nil {
		t.Fatal("non-adjacent connect accepted (ring has no 0-2 pair)")
	}
	if _, _, err := c.Connect(p0, p0b, Copy, 4096, 1); err == nil {
		t.Fatal("same-host connect accepted")
	}
	tb, err := NewTestbed(TestbedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	foreign := tb.A.Genie.NewProcess()
	if _, _, err := c.Connect(p0, foreign, Copy, 4096, 1); err == nil {
		t.Fatal("foreign process accepted")
	}
	if _, err := NewCluster(ClusterConfig{Topo: topo.Spec{Hosts: 2, Pairs: [][2]int{{0, 5}}}}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

// clusterTraffic runs a seeded 16-host random-traffic script on a ring
// and returns a full determinism digest: every delivery (channel, port,
// length, completion time, payload checksum) in consumption order plus
// final per-host NIC and framework stats.
func clusterTraffic(t *testing.T, workers int, seed int64) string {
	t.Helper()
	const hosts = 16
	cfg := ClusterConfig{
		TestbedConfig: TestbedConfig{Plane: mem.Symbolic, FramesPerHost: 256},
		Topo:          topo.Ring(hosts),
		Workers:       workers,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return clusterTrafficOn(t, c, cfg, seed)
}

// clusterTrafficOn runs the seeded traffic script on an existing
// cluster (fresh or Reset) and returns the determinism digest.
func clusterTrafficOn(t *testing.T, c *Cluster, cfg ClusterConfig, seed int64) string {
	t.Helper()
	hosts := cfg.Topo.Hosts
	procs := make([]*Process, hosts)
	for i := range procs {
		procs[i] = c.Host(i).Genie.NewProcess()
	}
	sems := []Semantics{Copy, EmulatedCopy, EmulatedMove, WeakMove}
	type pair struct{ a, b *Endpoint }
	var chans []pair
	for i, p := range cfg.Topo.Pairs {
		ea, eb, err := c.Connect(procs[p[0]], procs[p[1]], sems[i%len(sems)], 4096, 2)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, pair{ea, eb})
	}
	rng := rand.New(rand.NewSource(seed))
	var log strings.Builder
	for round := 0; round < 5; round++ {
		for ci, ch := range chans {
			for dir, e := range []*Endpoint{ch.a, ch.b} {
				if rng.Intn(3) == 0 {
					continue
				}
				size := 1 + rng.Intn(4096)
				payload := make([]byte, size)
				for j := range payload {
					payload[j] = byte(ci*31 + dir*17 + j + round)
				}
				if _, err := e.Send(payload); err != nil {
					t.Fatalf("round %d chan %d dir %d: %v", round, ci, dir, err)
				}
			}
		}
		c.Run()
		for ci, ch := range chans {
			for _, e := range []*Endpoint{ch.a, ch.b} {
				for {
					m, ok := e.Recv()
					if !ok {
						break
					}
					sum := 0
					for _, bb := range m.Data() {
						sum = (sum*31 + int(bb)) & 0xffffff
					}
					fmt.Fprintf(&log, "r%d c%d p%d len=%d at=%.6f sum=%06x\n",
						round, ci, e.Port(), len(m.Data()), m.CompletedAt(), sum)
					if err := m.Release(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	c.Run()
	for i := 0; i < hosts; i++ {
		fmt.Fprintf(&log, "host%d nic=%+v genie=%+v\n",
			i, c.Host(i).NIC.Stats(), c.Host(i).Genie.Stats())
	}
	fmt.Fprintf(&log, "final=%v\n", c.Now())
	return log.String()
}

// TestClusterTrafficDeterministicAcrossWorkers is the cross-shard
// determinism contract: the same seeded 16-host script produces a
// byte-identical digest — per-host stats, delivery order, payloads,
// timestamps — at every worker count. CI runs this under -race, which
// also audits the window barrier for unsynchronized sharing.
func TestClusterTrafficDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{3, 99} {
		serial := clusterTraffic(t, 1, seed)
		counts := []int{2, 4}
		if p := runtime.GOMAXPROCS(0); p > 1 && p != 2 && p != 4 {
			counts = append(counts, p)
		}
		for _, workers := range counts {
			if got := clusterTraffic(t, workers, seed); got != serial {
				t.Fatalf("seed %d: workers=%d digest differs from serial", seed, workers)
			}
		}
	}
}

// TestClusterFaultsDeterministicAcrossWorkers repeats the contract with
// per-host derived fault injectors armed: wire faults fire from
// host-local streams, so worker scheduling cannot perturb them.
func TestClusterFaultsDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		const hosts = 6
		cfg := ClusterConfig{
			TestbedConfig: TestbedConfig{Plane: mem.Symbolic, FramesPerHost: 256},
			Topo:          topo.Ring(hosts),
			Workers:       workers,
		}
		// Duplicate/reorder/corrupt only: a plain windowed channel has no
		// retransmit layer, so an unrecovered Drop would strand credits.
		cfg.Faults.Seed = 12345
		cfg.Faults.Duplicate = 0.15
		cfg.Faults.Reorder = 0.2
		cfg.Faults.Corrupt = 0.1
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]*Process, hosts)
		for i := range procs {
			procs[i] = c.Host(i).Genie.NewProcess()
		}
		var eps []*Endpoint
		for _, p := range cfg.Topo.Pairs {
			ea, eb, err := c.Connect(procs[p[0]], procs[p[1]], EmulatedCopy, 2048, 2)
			if err != nil {
				t.Fatal(err)
			}
			eps = append(eps, ea, eb)
		}
		payload := make([]byte, 1500)
		for round := 0; round < 4; round++ {
			for _, e := range eps {
				if _, err := e.Send(payload); err != nil {
					t.Fatal(err)
				}
			}
			c.Run()
			for _, e := range eps {
				for {
					m, ok := e.Recv()
					if !ok {
						break
					}
					if err := m.Release(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		var log strings.Builder
		for i := 0; i < hosts; i++ {
			fmt.Fprintf(&log, "host%d nic=%+v\n", i, c.Host(i).NIC.Stats())
		}
		return log.String()
	}
	serial := run(1)
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != serial {
			t.Fatalf("workers=%d fault digest differs from serial", workers)
		}
	}
}
