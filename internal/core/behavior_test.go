package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/vm"
)

func newEarlyTestbed(t *testing.T) (*Testbed, *Process, *Process) {
	t.Helper()
	tb, err := NewTestbed(TestbedConfig{Buffering: netsim.EarlyDemux})
	if err != nil {
		t.Fatal(err)
	}
	return tb, tb.A.Genie.NewProcess(), tb.B.Genie.NewProcess()
}

func TestShortDataConvertsToCopy(t *testing.T) {
	tb, sender, receiver := newEarlyTestbed(t)
	srcVA, _ := sender.Brk(8192)
	dstVA, _ := receiver.Brk(8192)
	if err := sender.Write(srcVA, []byte("short")); err != nil {
		t.Fatal(err)
	}

	// Emulated copy below 1666 bytes converts.
	out, _, err := tb.Transfer(sender, receiver, 1, EmulatedCopy, srcVA, dstVA, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converted() || out.Effective != Copy {
		t.Errorf("1000-byte emulated copy output: converted=%t effective=%v", out.Converted(), out.Effective)
	}
	// At or above the threshold it does not.
	out, _, err = tb.Transfer(sender, receiver, 1, EmulatedCopy, srcVA, dstVA, 1666)
	if err != nil {
		t.Fatal(err)
	}
	if out.Converted() {
		t.Error("1666-byte emulated copy output converted")
	}
	// Emulated share converts below 280.
	out, _, err = tb.Transfer(sender, receiver, 1, EmulatedShare, srcVA, dstVA, 279)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Converted() {
		t.Error("279-byte emulated share output not converted")
	}
	if tb.A.Genie.Stats().ConvertedToCopy != 2 {
		t.Errorf("ConvertedToCopy = %d, want 2", tb.A.Genie.Stats().ConvertedToCopy)
	}
}

// TestReverseCopyoutThreshold checks the two sides of the Section 5.2
// decision: fills below the threshold are copied out, fills above it are
// completed from the application page and swapped.
func TestReverseCopyoutThreshold(t *testing.T) {
	run := func(length int) Stats {
		tb, sender, receiver := newEarlyTestbed(t)
		srcVA, _ := sender.Brk(8192)
		dstVA, _ := receiver.Brk(8192)
		payload := bytes.Repeat([]byte{0x42}, length)
		if err := sender.Write(srcVA, payload); err != nil {
			t.Fatal(err)
		}
		_, in, err := tb.Transfer(sender, receiver, 1, EmulatedCopy, srcVA, dstVA, length)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, length)
		if err := receiver.Read(in.Addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("length %d: data corrupted", length)
		}
		return tb.B.Genie.Stats()
	}

	// 2000 < 2178: partial copyout, no swap. (2000 is above the output
	// conversion threshold of 1666, so this exercises the input path.)
	st := run(2000)
	if st.PartialCopyouts != 1 || st.ReverseCopyouts != 0 || st.SwappedPages != 0 {
		t.Errorf("2000 bytes: %+v, want one partial copyout", st)
	}
	// 3000 > 2178: reverse copyout then swap.
	st = run(3000)
	if st.ReverseCopyouts != 1 || st.SwappedPages != 1 || st.PartialCopyouts != 0 {
		t.Errorf("3000 bytes: %+v, want one reverse copyout", st)
	}
	// 8192: two full page swaps, nothing copied.
	st = run(8192)
	if st.SwappedPages != 2 || st.ReverseCopyouts != 0 || st.PartialCopyouts != 0 {
		t.Errorf("8192 bytes: %+v, want two clean swaps", st)
	}
}

// TestFigure5Shape reproduces the short-datagram behaviour: copy is
// cheapest for tiny datagrams; emulated copy tracks copy up to about
// half a page and then flattens; emulated share is lowest overall at
// half a page (paper: 325 vs 254 us at 2 KB); move is by far the worst
// for short data because of page zeroing.
func TestFigure5Shape(t *testing.T) {
	latency := func(sem Semantics, length int) float64 {
		tb, sender, receiver := newEarlyTestbed(t)
		var srcVA, dstVA vm.Addr
		if sem.SystemAllocated() {
			r, err := sender.AllocIOBuffer(length)
			if err != nil {
				t.Fatal(err)
			}
			srcVA = r.Start()
		} else {
			srcVA, _ = sender.Brk(8192)
			dstVA, _ = receiver.Brk(8192)
		}
		if err := sender.Write(srcVA, bytes.Repeat([]byte{1}, length)); err != nil {
			t.Fatal(err)
		}
		out, in, err := tb.Transfer(sender, receiver, 1, sem, srcVA, dstVA, length)
		if err != nil {
			t.Fatal(err)
		}
		return in.CompletedAt.Sub(out.StartedAt).Micros()
	}

	// Paper: copy's latency at the shortest lengths is ~145 us.
	if l := latency(Copy, 64); math.Abs(l-145) > 12 {
		t.Errorf("copy latency at 64 bytes = %.0f us, paper says ~145", l)
	}
	// At half a page: emulated copy ~325 us, emulated share ~254 us.
	if l := latency(EmulatedCopy, 2048); math.Abs(l-325) > 20 {
		t.Errorf("emulated copy at 2 KB = %.0f us, paper says ~325", l)
	}
	if l := latency(EmulatedShare, 2048); math.Abs(l-254) > 20 {
		t.Errorf("emulated share at 2 KB = %.0f us, paper says ~254", l)
	}
	// Below its threshold emulated copy equals copy exactly.
	if lc, lec := latency(Copy, 1024), latency(EmulatedCopy, 1024); math.Abs(lc-lec) > 0.01 {
		t.Errorf("below threshold: emulated copy %.1f != copy %.1f", lec, lc)
	}
	// Move is by far the worst for short data (page zeroing).
	lm := latency(Move, 64)
	for _, sem := range []Semantics{Copy, EmulatedCopy, EmulatedShare, EmulatedMove, EmulatedWeakMove} {
		if l := latency(sem, 64); l >= lm {
			t.Errorf("%v (%.0f us) not below move (%.0f us) at 64 bytes", sem, l, lm)
		}
	}
	// Emulated move is much cheaper than move for short data: region
	// hiding avoids the zeroing.
	if lem := latency(EmulatedMove, 64); lm-lem < 50 {
		t.Errorf("emulated move %.0f vs move %.0f: region hiding advantage missing", lem, lm)
	}
}

// TestOutputIntegrityAcrossSemantics overwrites the send buffer right
// after Output returns (before the frame is serialized) and checks who
// sees it: strong-integrity semantics deliver the original data, share
// delivers the overwrite.
func TestOutputIntegrityAcrossSemantics(t *testing.T) {
	const length = 2 * 4096
	for _, sem := range []Semantics{Copy, EmulatedCopy, Share, EmulatedShare} {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			tb, sender, receiver := newEarlyTestbed(t)
			srcVA, _ := sender.Brk(length)
			dstVA, _ := receiver.Brk(length)
			orig := bytes.Repeat([]byte{0xAA}, length)
			if err := sender.Write(srcVA, orig); err != nil {
				t.Fatal(err)
			}
			in, err := receiver.Input(1, sem, dstVA, length)
			if err != nil {
				t.Fatal(err)
			}
			out, err := sender.Output(1, sem, srcVA, length)
			if err != nil {
				t.Fatal(err)
			}
			// Overwrite before any simulated time elapses (the frame has
			// not been serialized yet).
			clobber := bytes.Repeat([]byte{0xBB}, length)
			if err := sender.Write(srcVA, clobber); err != nil {
				t.Fatal(err)
			}
			tb.Run()
			if out.Err != nil || in.Err != nil {
				t.Fatal(out.Err, in.Err)
			}
			got := make([]byte, length)
			if err := receiver.Read(in.Addr, got); err != nil {
				t.Fatal(err)
			}
			if sem.WeakIntegrity() {
				if !bytes.Equal(got, clobber) {
					t.Error("share semantics did not expose the overwrite (in-place output broken)")
				}
			} else {
				if !bytes.Equal(got, orig) {
					t.Error("strong-integrity semantics delivered overwritten data")
				}
			}
			// Either way the sender still sees its own overwrite.
			local := make([]byte, length)
			if err := sender.Read(srcVA, local); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(local, clobber) {
				t.Error("sender lost its own write")
			}
		})
	}
}

// TestMoveOutputConsumesBuffer: after move output, the buffer is gone;
// after emulated move output it behaves exactly as if gone (region
// hiding) — the transparency requirement of Section 4.
func TestMoveOutputConsumesBuffer(t *testing.T) {
	for _, sem := range []Semantics{Move, EmulatedMove} {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			tb, sender, receiver := newEarlyTestbed(t)
			r, err := sender.AllocIOBuffer(4096)
			if err != nil {
				t.Fatal(err)
			}
			if err := sender.Write(r.Start(), []byte("gone")); err != nil {
				t.Fatal(err)
			}
			if _, err := receiver.Input(1, sem, 0, 4096); err != nil {
				t.Fatal(err)
			}
			if _, err := sender.Output(1, sem, r.Start(), 4096); err != nil {
				t.Fatal(err)
			}
			tb.Run()
			buf := make([]byte, 4)
			if err := sender.Read(r.Start(), buf); !errors.Is(err, vm.ErrFault) {
				t.Errorf("read of consumed output buffer: err = %v, want unrecoverable fault", err)
			}
			if err := sender.Write(r.Start(), buf); !errors.Is(err, vm.ErrFault) {
				t.Errorf("write of consumed output buffer: err = %v, want unrecoverable fault", err)
			}
		})
	}
}

// TestWeakMoveBufferStaysMapped: weak move output leaves the buffer
// mapped (reads succeed), and a subsequent input reuses the region,
// exposing the arriving data in place — weak integrity made visible.
func TestWeakMoveBufferStaysMapped(t *testing.T) {
	tb, sender, receiver := newEarlyTestbed(t)
	// Receiver builds its weakly-moved-out region by doing a first
	// transfer, then recycling.
	r0, err := receiver.AllocIOBuffer(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := receiver.Write(r0.Start(), bytes.Repeat([]byte{0x11}, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := receiver.RecycleIOBuffer(r0, true); err != nil {
		t.Fatal(err)
	}
	// The weakly-moved-out buffer is still readable (weak integrity).
	buf := make([]byte, 16)
	if err := receiver.Read(r0.Start(), buf); err != nil {
		t.Fatalf("weakly moved out region unreadable: %v", err)
	}

	payload := bytes.Repeat([]byte{0x77}, 4096)
	srcVA := mustIOBuf(t, sender, payload)
	in, err := receiver.Input(1, EmulatedWeakMove, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if tb.B.Genie.Stats().RegionsReused != 1 {
		t.Fatal("cached region not reused")
	}
	if _, err := sender.Output(1, EmulatedWeakMove, srcVA, 4096); err != nil {
		t.Fatal(err)
	}
	tb.Run()
	if in.Err != nil {
		t.Fatal(in.Err)
	}
	if in.Region != r0 {
		t.Error("input did not reuse the cached region")
	}
	got := make([]byte, 4096)
	if err := receiver.Read(in.Addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("reused region does not hold the new datagram")
	}
}

func TestSystemAllocatedOutputErrors(t *testing.T) {
	_, sender, _ := newEarlyTestbed(t)
	// Unmovable (heap) buffer: move output must refuse.
	heap, _ := sender.Brk(4096)
	if _, err := sender.Output(1, Move, heap, 4096); !errors.Is(err, ErrUnmovableOutput) {
		t.Errorf("move output on heap: err = %v", err)
	}
	// Output not at region start.
	r, err := sender.AllocIOBuffer(2 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Output(1, Move, r.Start()+4096, 4096); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("move output mid-region: err = %v", err)
	}
	// Double output of the same region.
	if _, err := sender.Output(1, EmulatedMove, r.Start(), 2*4096); err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Output(1, EmulatedMove, r.Start(), 2*4096); !errors.Is(err, ErrNotMovedIn) {
		t.Errorf("double move output: err = %v", err)
	}
	// No region at all.
	if _, err := sender.Output(1, Move, 0xdead0000, 4096); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("move output on nothing: err = %v", err)
	}
	// Invalid semantics and lengths.
	if _, err := sender.Output(1, Semantics(42), heap, 10); !errors.Is(err, ErrBadSemantics) {
		t.Errorf("bogus semantics: err = %v", err)
	}
	if _, err := sender.Output(1, Copy, heap, 0); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("zero length: err = %v", err)
	}
	if _, err := sender.Input(1, Semantics(42), heap, 10); !errors.Is(err, ErrBadSemantics) {
		t.Errorf("bogus input semantics: err = %v", err)
	}
	if _, err := sender.Input(1, Copy, heap, -1); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("negative input length: err = %v", err)
	}
}

// TestFrameConservation runs many transfers under every semantics and
// checks that no physical frames leak on either host.
func TestFrameConservation(t *testing.T) {
	for _, scheme := range []netsim.InputBuffering{netsim.EarlyDemux, netsim.Pooled, netsim.OutboardBuffering} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			tb, err := NewTestbed(TestbedConfig{Buffering: scheme})
			if err != nil {
				t.Fatal(err)
			}
			sender := tb.A.Genie.NewProcess()
			receiver := tb.B.Genie.NewProcess()
			const length = 3 * 4096
			srcVA, _ := sender.Brk(length)
			dstVA, _ := receiver.Brk(length)
			if err := sender.Write(srcVA, bytes.Repeat([]byte{9}, length)); err != nil {
				t.Fatal(err)
			}

			runRound := func(round int) {
				for _, sem := range AllSemantics() {
					var sva, dva vm.Addr = srcVA, dstVA
					var srcRegion *vm.Region
					if sem.SystemAllocated() {
						r, err := sender.AllocIOBuffer(length)
						if err != nil {
							t.Fatal(err)
						}
						if err := sender.Write(r.Start(), bytes.Repeat([]byte{9}, length)); err != nil {
							t.Fatal(err)
						}
						sva = r.Start()
						srcRegion = r
					}
					_, in, err := tb.Transfer(sender, receiver, 1, sem, sva, dva, length)
					if err != nil {
						t.Fatalf("round %d %v: %v", round, sem, err)
					}
					// Release both sides' system-allocated buffers: the
					// receiver's input region, and the sender's cached
					// (moved-out) region for the cached semantics.
					if in.Region != nil {
						if err := receiver.FreeIOBuffer(in.Region); err != nil {
							t.Fatal(err)
						}
					}
					if srcRegion != nil && sem != Move && !srcRegion.Removed() {
						if err := sender.Space().RemoveRegion(srcRegion); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			// Warm-up faults in heap pages and settles steady state.
			runRound(-1)
			tb.Run()
			freeA := tb.A.Phys.FreeFrames()
			freeB := tb.B.Phys.FreeFrames()
			for round := 0; round < 5; round++ {
				runRound(round)
			}
			tb.Run()
			if got := tb.A.Phys.FreeFrames(); got != freeA {
				t.Errorf("sender frames leaked: %d -> %d", freeA, got)
			}
			if got := tb.B.Phys.FreeFrames(); got != freeB {
				t.Errorf("receiver frames leaked: %d -> %d", freeB, got)
			}
			if err := tb.A.Phys.CheckInvariants(); err != nil {
				t.Error(err)
			}
			if err := tb.B.Phys.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestRegionRemovedDuringInput: the application removes its cached input
// region mid-input; Genie must complete the input into a fresh region
// with the data intact (Section 6.2.1 region check).
func TestRegionRemovedDuringInput(t *testing.T) {
	tb, sender, receiver := newEarlyTestbed(t)
	srcVA, _ := sender.Brk(4096)
	payload := bytes.Repeat([]byte{0x3A}, 4096)
	if err := sender.Write(srcVA, payload); err != nil {
		t.Fatal(err)
	}
	in, err := receiver.Input(1, EmulatedWeakMove, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// The app removes the region the kernel prepared for this input.
	if err := receiver.Space().RemoveRegion(in.region); err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Output(1, EmulatedWeakMove, mustIOBuf(t, sender, payload), 4096); err != nil {
		t.Fatal(err)
	}
	tb.Run()
	if in.Err != nil {
		t.Fatal(in.Err)
	}
	if tb.B.Genie.Stats().RegionsRemapped != 1 {
		t.Fatal("region check did not remap")
	}
	got := make([]byte, 4096)
	if err := receiver.Read(in.Addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across region remap")
	}
}

func mustIOBuf(t *testing.T, p *Process, data []byte) vm.Addr {
	t.Helper()
	r, err := p.AllocIOBuffer(len(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(r.Start(), data); err != nil {
		t.Fatal(err)
	}
	return r.Start()
}

// TestPingPongRegionCaching: bidirectional traffic with emulated move
// reuses regions via the cache after warm-up, and output data passes
// correctly in both directions.
func TestPingPongRegionCaching(t *testing.T) {
	tb, a, b := newEarlyTestbed(t)
	const length = 2 * 4096
	// Warm-up: A sends to B; B gets a region.
	srcA := mustIOBuf(t, a, bytes.Repeat([]byte{1}, length))
	_, in1, err := tb.Transfer(a, b, 1, EmulatedMove, srcA, 0, length)
	if err != nil {
		t.Fatal(err)
	}
	// B sends that region back; A (whose own region was cached by its
	// output... actually consumed) receives into a fresh region.
	if err := b.Write(in1.Addr, bytes.Repeat([]byte{2}, length)); err != nil {
		t.Fatal(err)
	}
	_, in2, err := tb.Transfer(b, a, 2, EmulatedMove, in1.Region.Start(), 0, length)
	if err != nil {
		t.Fatal(err)
	}
	// Third leg: A sends again; its cached (hidden) region from leg 1 is
	// A's srcA region, which was enqueued at dispose — a new input on A
	// would reuse it.
	if err := a.Write(in2.Addr, bytes.Repeat([]byte{3}, length)); err != nil {
		t.Fatal(err)
	}
	_, in3, err := tb.Transfer(a, b, 1, EmulatedMove, in2.Region.Start(), 0, length)
	if err != nil {
		t.Fatal(err)
	}
	// B's first region (in1.Region) was consumed by B's own output in
	// leg 2 and enqueued; leg 3's input on B must have reused it.
	if in3.Region != in1.Region {
		t.Error("region cache not reused across ping-pong")
	}
	if tb.B.Genie.Stats().RegionsReused == 0 {
		t.Error("no region cache hits recorded")
	}
	got := make([]byte, length)
	if err := b.Read(in3.Addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{3}, length)) {
		t.Error("third-leg data wrong")
	}
}
