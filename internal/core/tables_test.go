package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/netsim"
	"repro/internal/vm"
)

// opsOfStage extracts the operation sequence one host recorded for a
// stage, in execution order.
func opsOfStage(in *Instrumentation, stage Stage) []cost.Op {
	var out []cost.Op
	for _, r := range in.Records() {
		if r.Stage == stage {
			out = append(out, r.Op)
		}
	}
	return out
}

func sameOps(a, b []cost.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTables234Conformance runs one canonical transfer per semantics and
// device architecture with instrumentation on, and verifies the executed
// operation sequences match the declared Tables 2-4 exactly — stage by
// stage, in order, on both hosts. Any drift between the data path and
// the paper's tables fails here.
func TestTables234Conformance(t *testing.T) {
	const length = 4 * 4096
	for _, scheme := range []netsim.InputBuffering{netsim.EarlyDemux, netsim.Pooled, netsim.OutboardBuffering} {
		for _, sem := range AllSemantics() {
			scheme, sem := scheme, sem
			t.Run(scheme.String()+"/"+sem.String(), func(t *testing.T) {
				tb, err := NewTestbed(TestbedConfig{Buffering: scheme})
				if err != nil {
					t.Fatal(err)
				}
				tb.A.Genie.Instr().Enabled = true
				tb.B.Genie.Instr().Enabled = true
				sender := tb.A.Genie.NewProcess()
				receiver := tb.B.Genie.NewProcess()

				var srcVA, dstVA vm.Addr
				if sem.SystemAllocated() {
					r, err := sender.AllocIOBuffer(length)
					if err != nil {
						t.Fatal(err)
					}
					srcVA = r.Start()
				} else {
					srcVA, _ = sender.Brk(length)
					dstVA, _ = receiver.Brk(length)
				}
				if err := sender.Write(srcVA, make([]byte, length)); err != nil {
					t.Fatal(err)
				}
				if _, _, err := tb.Transfer(sender, receiver, 1, sem, srcVA, dstVA, length); err != nil {
					t.Fatal(err)
				}

				// Sender side: Table 2.
				gotPrep := opsOfStage(tb.A.Genie.Instr(), StagePrepare)
				if want := OutputPrepareOps(sem); !sameOps(gotPrep, want) {
					t.Errorf("output prepare ops = %v, table says %v", gotPrep, want)
				}
				gotDisp := opsOfStage(tb.A.Genie.Instr(), StageDispose)
				if want := OutputDisposeOps(sem); !sameOps(gotDisp, want) {
					t.Errorf("output dispose ops = %v, table says %v", gotDisp, want)
				}

				// Receiver side: Tables 3/4 and Section 6.2.3; cold
				// region cache on the first input.
				gotRxPrep := opsOfStage(tb.B.Genie.Instr(), StagePrepare)
				if want := InputPrepareOps(sem, false); !sameOps(gotRxPrep, want) {
					t.Errorf("input prepare ops = %v, table says %v", gotRxPrep, want)
				}
				gotRxReady := opsOfStage(tb.B.Genie.Instr(), StageReady)
				if want := InputReadyOps(sem, scheme); !sameOps(gotRxReady, want) {
					t.Errorf("input ready ops = %v, table says %v", gotRxReady, want)
				}
				gotRxDisp := opsOfStage(tb.B.Genie.Instr(), StageDispose)
				if want := InputDisposeOps(sem, scheme); !sameOps(gotRxDisp, want) {
					t.Errorf("input dispose ops = %v, table says %v", gotRxDisp, want)
				}
			})
		}
	}
}

// TestTablesCoverAllSemantics: every semantics has a declared sequence
// in every table.
func TestTablesCoverAllSemantics(t *testing.T) {
	for _, sem := range AllSemantics() {
		if OutputPrepareOps(sem) == nil {
			t.Errorf("%v: no output prepare ops", sem)
		}
		if OutputDisposeOps(sem) == nil {
			t.Errorf("%v: no output dispose ops", sem)
		}
		for _, scheme := range []netsim.InputBuffering{netsim.EarlyDemux, netsim.Pooled, netsim.OutboardBuffering} {
			if InputDisposeOps(sem, scheme) == nil {
				t.Errorf("%v/%v: no input dispose ops", sem, scheme)
			}
		}
	}
}

// TestProcessExitDuringIO: the application terminates with output in
// flight; the transfer's pages survive until the device completes and
// the whole address space is reclaimed afterwards — the Section 3.1
// termination hazard, end to end.
func TestProcessExitDuringIO(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Buffering: netsim.EarlyDemux})
	if err != nil {
		t.Fatal(err)
	}
	sender := tb.A.Genie.NewProcess()
	receiver := tb.B.Genie.NewProcess()
	const length = 3 * 4096
	srcVA, _ := sender.Brk(length)
	dstVA, _ := receiver.Brk(length)
	payload := make([]byte, length)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := sender.Write(srcVA, payload); err != nil {
		t.Fatal(err)
	}
	in, err := receiver.Input(1, EmulatedShare, dstVA, length)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Output(1, EmulatedCopy, srcVA, length); err != nil {
		t.Fatal(err)
	}
	// The sender dies before a single cell has left.
	sender.Exit()
	tb.Run()
	if in.Err != nil {
		t.Fatal(in.Err)
	}
	got := make([]byte, length)
	if err := receiver.Read(in.Addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d corrupted after sender exit during output", i)
		}
	}
	// All sender frames return to the free list once I/O completed.
	if free := tb.A.Phys.FreeFrames(); free != tb.A.Phys.NumFrames()-tb.A.Genie.Config().KernelPoolPages {
		t.Errorf("sender frames not reclaimed after exit: %d free", free)
	}
	if err := tb.A.Phys.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestReceiverExitDuringInput: the receiver dies with an in-place input
// posted; the arriving DMA lands in pages that are pending-free and the
// system never hands them to anyone else mid-flight.
func TestReceiverExitDuringInput(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Buffering: netsim.EarlyDemux})
	if err != nil {
		t.Fatal(err)
	}
	sender := tb.A.Genie.NewProcess()
	receiver := tb.B.Genie.NewProcess()
	const length = 2 * 4096
	srcVA, _ := sender.Brk(length)
	dstVA, _ := receiver.Brk(length)
	if err := sender.Write(srcVA, make([]byte, length)); err != nil {
		t.Fatal(err)
	}
	if _, err := receiver.Input(1, EmulatedShare, dstVA, length); err != nil {
		t.Fatal(err)
	}
	receiver.Exit()
	// A hostile process tries to grab all memory while the input is
	// still pending.
	vandal := tb.B.Genie.NewProcess()
	grab, err := vandal.Brk(4 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := vandal.Write(grab, make([]byte, 4*4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Output(1, EmulatedShare, srcVA, length); err != nil {
		t.Fatal(err)
	}
	tb.Run()
	// The vandal's memory is untouched by the DMA.
	buf := make([]byte, 4*4096)
	if err := vandal.Read(grab, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("vandal byte %d = %#x: DMA landed in another process's memory", i, b)
		}
	}
	if err := tb.B.Phys.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
