package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/netsim"
	"repro/internal/vm"
)

// testTransfer runs one measured datagram transfer on a fresh testbed
// and verifies payload integrity, returning the operations and testbed.
func testTransfer(t *testing.T, cfg TestbedConfig, sem Semantics, length int) (*Testbed, *OutputOp, *InputOp) {
	t.Helper()
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sender := tb.A.Genie.NewProcess()
	receiver := tb.B.Genie.NewProcess()

	payload := make([]byte, length)
	for i := range payload {
		payload[i] = byte(i*13 + 7)
	}

	var srcVA, dstVA vm.Addr
	if sem.SystemAllocated() {
		r, err := sender.AllocIOBuffer(length)
		if err != nil {
			t.Fatal(err)
		}
		srcVA = r.Start()
	} else {
		va, err := sender.Brk(length + 2*tb.Model.Platform.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		srcVA = va
		dva, err := receiver.Brk(length + 2*tb.Model.Platform.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		dstVA = dva
	}
	if err := sender.Write(srcVA, payload); err != nil {
		t.Fatal(err)
	}

	out, in, err := tb.Transfer(sender, receiver, 1, sem, srcVA, dstVA, length)
	if err != nil {
		t.Fatalf("%v transfer: %v", sem, err)
	}
	if in.N != length {
		t.Fatalf("%v: received %d bytes, want %d", sem, in.N, length)
	}
	got := make([]byte, length)
	if err := receiver.Read(in.Addr, got); err != nil {
		t.Fatalf("%v: reading received data: %v", sem, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("%v: payload corrupted in transit", sem)
	}
	return tb, out, in
}

// expectedLatency composes the end-to-end latency the paper's breakdown
// model predicts (Section 8 / Table 7): base + sender prepare + the
// receiver operations that contribute under the given buffering scheme.
func expectedLatency(m *cost.Model, sem Semantics, scheme netsim.InputBuffering, aligned bool, b int) float64 {
	return expectedLatencyOff(m, sem, scheme, aligned, b, 0)
}

// expectedLatencyOff is expectedLatency with a device payload placement
// offset, which changes how many bytes move-semantics input must
// zero-complete under pooled buffering.
func expectedLatencyOff(m *cost.Model, sem Semantics, scheme netsim.InputBuffering, aligned bool, b, devOff int) float64 {
	c := func(op cost.Op, n int) float64 { return m.Cost(op, n).Micros() }
	ps := m.Platform.PageSize
	zeroed := func() int {
		z := devOff
		if end := (devOff + b) % ps; end != 0 {
			z += ps - end
		}
		return z
	}()
	lat := m.BaseLatency(b).Micros()

	// Sender prepare (Table 2).
	switch sem {
	case Copy:
		lat += c(cost.BufAllocate, b) + c(cost.Copyin, b)
	case EmulatedCopy:
		lat += c(cost.Reference, b) + c(cost.ReadOnly, b)
	case Share:
		lat += c(cost.Reference, b) + c(cost.Wire, b)
	case EmulatedShare:
		lat += c(cost.Reference, b)
	case Move:
		lat += c(cost.Reference, b) + c(cost.Wire, b) + c(cost.RegionMarkOut, 0) + c(cost.Invalidate, b)
	case EmulatedMove:
		lat += c(cost.Reference, b) + c(cost.RegionMarkOut, 0) + c(cost.Invalidate, b)
	case WeakMove:
		lat += c(cost.Reference, b) + c(cost.Wire, b) + c(cost.RegionMarkOut, 0)
	case EmulatedWeakMove:
		lat += c(cost.Reference, b) + c(cost.RegionMarkOut, 0)
	}

	// Receiver ready (pooled only contributes; Tables 3 and 4).
	if scheme == netsim.Pooled {
		lat += c(cost.OverlayAllocate, b) + c(cost.Overlay, b)
	}

	// Receiver dispose.
	switch scheme {
	case netsim.EarlyDemux:
		switch sem {
		case Copy:
			lat += c(cost.Copyout, b)
		case EmulatedCopy:
			lat += c(cost.Swap, b) // page-multiple aligned sweep: all pages swapped
		case Share:
			lat += c(cost.Unwire, b) + c(cost.Unreference, b)
		case EmulatedShare:
			lat += c(cost.Unreference, b)
		case Move:
			lat += c(cost.RegionCreate, 0) + c(cost.ZeroComplete, 0) + c(cost.RegionFill, b) +
				c(cost.RegionMap, b) + c(cost.RegionMarkIn, 0)
		case EmulatedMove:
			lat += c(cost.RegionCheckUnrefReinstateMarkIn, b)
		case WeakMove:
			lat += c(cost.RegionCheck, 0) + c(cost.Unwire, b) + c(cost.Unreference, b) + c(cost.RegionMarkIn, 0)
		case EmulatedWeakMove:
			lat += c(cost.RegionCheckUnrefMarkIn, b)
		}
	case netsim.Pooled:
		passData := func() float64 {
			if aligned {
				return c(cost.Swap, b)
			}
			return c(cost.Copyout, b)
		}
		switch sem {
		case Copy:
			lat += c(cost.Copyout, b) + c(cost.OverlayDeallocate, b)
		case EmulatedCopy:
			lat += passData() + c(cost.OverlayDeallocate, b)
		case Share:
			lat += c(cost.Unwire, b) + c(cost.Unreference, b) + passData() + c(cost.OverlayDeallocate, b)
		case EmulatedShare:
			lat += c(cost.Unreference, b) + passData() + c(cost.OverlayDeallocate, b)
		case Move:
			lat += c(cost.RegionCreate, 0) + c(cost.ZeroComplete, zeroed) + c(cost.RegionFillOverlayRefill, b) +
				c(cost.RegionMap, b) + c(cost.RegionMarkIn, 0) + c(cost.OverlayDeallocate, b)
		case EmulatedMove, EmulatedWeakMove:
			lat += c(cost.RegionCheck, 0) + c(cost.Unreference, b) + c(cost.Swap, b) +
				c(cost.RegionMarkIn, 0) + c(cost.OverlayDeallocate, b)
		case WeakMove:
			lat += c(cost.RegionCheck, 0) + c(cost.Unwire, b) + c(cost.Unreference, b) + c(cost.Swap, b) +
				c(cost.RegionMarkIn, 0) + c(cost.OverlayDeallocate, b)
		}
	case netsim.OutboardBuffering:
		lat += c(cost.OutboardDMA, b)
		switch sem {
		case Copy:
			lat += c(cost.BufAllocate, b) + c(cost.Copyout, b)
		case EmulatedCopy:
			lat += c(cost.Reference, b) + c(cost.Unreference, b)
		case Share:
			lat += c(cost.Unwire, b) + c(cost.Unreference, b)
		case EmulatedShare:
			lat += c(cost.Unreference, b)
		case Move:
			lat += c(cost.BufAllocate, b) + c(cost.RegionCreate, 0) + c(cost.ZeroComplete, 0) +
				c(cost.RegionFill, b) + c(cost.RegionMap, b) + c(cost.RegionMarkIn, 0)
		case EmulatedMove:
			lat += c(cost.RegionCheckUnrefReinstateMarkIn, b)
		case WeakMove:
			lat += c(cost.RegionCheck, 0) + c(cost.Unwire, b) + c(cost.Unreference, b) + c(cost.RegionMarkIn, 0)
		case EmulatedWeakMove:
			lat += c(cost.RegionCheckUnrefMarkIn, b)
		}
	}
	return lat
}

// TestEarlyDemuxAllSemantics transfers a 60 KB page-multiple datagram
// under every semantics and checks both integrity and that the measured
// end-to-end latency equals the breakdown model's composition exactly.
func TestEarlyDemuxAllSemantics(t *testing.T) {
	const length = 15 * 4096 // 60 KB
	for _, sem := range AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			tb, out, in := testTransfer(t, TestbedConfig{Buffering: netsim.EarlyDemux}, sem, length)
			got := in.CompletedAt.Sub(out.StartedAt).Micros()
			want := expectedLatency(tb.Model, sem, netsim.EarlyDemux, true, length)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("e2e latency = %.2f us, breakdown model says %.2f us", got, want)
			}
		})
	}
}

// TestFigure3Ordering checks the headline result: at 60 KB with early
// demultiplexing, copy semantics is distinctly inferior and all other
// semantics cluster, in the paper's exact order.
func TestFigure3Ordering(t *testing.T) {
	const length = 15 * 4096
	lat := make(map[Semantics]float64)
	for _, sem := range AllSemantics() {
		_, out, in := testTransfer(t, TestbedConfig{Buffering: netsim.EarlyDemux}, sem, length)
		lat[sem] = in.CompletedAt.Sub(out.StartedAt).Micros()
	}
	// Copy reduced by emulated copy by ~37% (paper: 37% for 60 KB).
	reduction := (lat[Copy] - lat[EmulatedCopy]) / lat[Copy]
	if reduction < 0.33 || reduction > 0.41 {
		t.Errorf("emulated copy reduces copy latency by %.0f%%, paper says 37%%", reduction*100)
	}
	// All non-copy semantics within 6% of each other.
	lo, hi := math.Inf(1), math.Inf(-1)
	for sem, l := range lat {
		if sem == Copy {
			continue
		}
		lo = math.Min(lo, l)
		hi = math.Max(hi, l)
	}
	if (hi-lo)/lo > 0.06 {
		t.Errorf("non-copy semantics spread %.1f%%, expected clustering", (hi-lo)/lo*100)
	}
	// Paper's order: emulated share < emulated weak move < emulated move
	// < {share, emulated copy, weak move} < move << copy.
	if !(lat[EmulatedShare] < lat[EmulatedWeakMove] &&
		lat[EmulatedWeakMove] < lat[EmulatedMove] &&
		lat[EmulatedMove] < lat[EmulatedCopy] &&
		lat[EmulatedCopy] < lat[Move] &&
		lat[Move] < lat[Copy]) {
		t.Errorf("latency ordering differs from Figure 3: %v", lat)
	}
	// Emulated copy beats move and is statistically indistinguishable
	// from share at 60 KB (the paper's measured fits put it just below;
	// Table 6's published constants put it within a couple of
	// microseconds — measurement noise on a ~4 ms latency).
	if lat[EmulatedCopy] >= lat[Move] {
		t.Errorf("emulated copy (%.0f) not below move (%.0f)", lat[EmulatedCopy], lat[Move])
	}
	if gap := math.Abs(lat[EmulatedCopy]-lat[Share]) / lat[Share]; gap > 0.005 {
		t.Errorf("emulated copy (%.0f) vs share (%.0f): gap %.2f%%, expected <0.5%%",
			lat[EmulatedCopy], lat[Share], gap*100)
	}
}

func TestPooledAlignedAllSemantics(t *testing.T) {
	const length = 15 * 4096
	for _, sem := range AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			tb, out, in := testTransfer(t, TestbedConfig{Buffering: netsim.Pooled}, sem, length)
			got := in.CompletedAt.Sub(out.StartedAt).Micros()
			want := expectedLatency(tb.Model, sem, netsim.Pooled, true, length)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("e2e latency = %.2f us, breakdown model says %.2f us", got, want)
			}
		})
	}
}

// TestPooledUnaligned checks Figure 7's split: with unaligned buffers
// the application-allocated non-copy semantics must copy at the
// receiver, while system-allocated semantics are unaffected.
func TestPooledUnaligned(t *testing.T) {
	const length = 15 * 4096
	const off = 40 // device places payload 40 bytes into the first page
	for _, sem := range AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			tb, out, in := testTransfer(t, TestbedConfig{Buffering: netsim.Pooled, OverlayOff: off}, sem, length)
			got := in.CompletedAt.Sub(out.StartedAt).Micros()
			// Application buffers are page aligned (Brk) while the device
			// offset is 40: app-allocated semantics lose alignment.
			aligned := sem.SystemAllocated()
			want := expectedLatencyOff(tb.Model, sem, netsim.Pooled, aligned, length, off)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("e2e latency = %.2f us, breakdown model says %.2f us", got, want)
			}
			if !sem.SystemAllocated() && sem != Copy {
				if tb.B.Genie.Stats().UnalignedInputs == 0 && sem == EmulatedCopy {
					t.Error("unaligned input not detected")
				}
			}
		})
	}
}

func TestOutboardAllSemantics(t *testing.T) {
	const length = 15 * 4096
	for _, sem := range AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			tb, out, in := testTransfer(t, TestbedConfig{Buffering: netsim.OutboardBuffering}, sem, length)
			got := in.CompletedAt.Sub(out.StartedAt).Micros()
			want := expectedLatency(tb.Model, sem, netsim.OutboardBuffering, true, length)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("e2e latency = %.2f us, breakdown model says %.2f us", got, want)
			}
		})
	}
}

// TestOutboardEmulatedCopyNearEmulatedShare checks the paper's Section 7
// prediction: with outboard buffering, emulated copy performs even
// closer to emulated share because it is implemented much like it.
func TestOutboardEmulatedCopyNearEmulatedShare(t *testing.T) {
	const length = 15 * 4096
	_, outC, inC := testTransfer(t, TestbedConfig{Buffering: netsim.OutboardBuffering}, EmulatedCopy, length)
	_, outS, inS := testTransfer(t, TestbedConfig{Buffering: netsim.OutboardBuffering}, EmulatedShare, length)
	lc := inC.CompletedAt.Sub(outC.StartedAt).Micros()
	ls := inS.CompletedAt.Sub(outS.StartedAt).Micros()
	if (lc-ls)/ls > 0.02 {
		t.Errorf("outboard emulated copy %.1f vs emulated share %.1f: gap %.1f%%, expected <2%%",
			lc, ls, (lc-ls)/ls*100)
	}
}

// TestUnalignedBufferEarlyDemux exercises system input alignment with an
// application buffer that is NOT page aligned: emulated copy must still
// avoid copying full pages.
func TestUnalignedAppBufferEarlyDemux(t *testing.T) {
	tb, err := NewTestbed(TestbedConfig{Buffering: netsim.EarlyDemux})
	if err != nil {
		t.Fatal(err)
	}
	sender := tb.A.Genie.NewProcess()
	receiver := tb.B.Genie.NewProcess()
	const length = 4 * 4096
	srcVA, _ := sender.Brk(length + 4096)
	base, _ := receiver.Brk(length + 2*4096)
	dstVA := base + 1000 // decidedly unaligned

	payload := bytes.Repeat([]byte{0xD7}, length)
	if err := sender.Write(srcVA, payload); err != nil {
		t.Fatal(err)
	}
	// Surround the buffer with sentinel data that must survive.
	if err := receiver.Write(base, bytes.Repeat([]byte{0xEE}, 1000)); err != nil {
		t.Fatal(err)
	}
	tail := dstVA + vm.Addr(length)
	if err := receiver.Write(tail, bytes.Repeat([]byte{0xBB}, 500)); err != nil {
		t.Fatal(err)
	}

	_, in, err := tb.Transfer(sender, receiver, 1, EmulatedCopy, srcVA, dstVA, length)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, length)
	if err := receiver.Read(in.Addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted for unaligned app buffer")
	}
	// Sentinels intact (reverse copyout completed pages correctly).
	head := make([]byte, 1000)
	if err := receiver.Read(base, head); err != nil {
		t.Fatal(err)
	}
	for i, b := range head {
		if b != 0xEE {
			t.Fatalf("head sentinel byte %d = %#x", i, b)
		}
	}
	tailBuf := make([]byte, 500)
	if err := receiver.Read(tail, tailBuf); err != nil {
		t.Fatal(err)
	}
	for i, b := range tailBuf {
		if b != 0xBB {
			t.Fatalf("tail sentinel byte %d = %#x", i, b)
		}
	}
	st := tb.B.Genie.Stats()
	if st.SwappedPages == 0 {
		t.Error("no pages swapped despite system input alignment")
	}
	if st.ReverseCopyouts == 0 {
		t.Error("no reverse copyout on partial boundary pages")
	}
}
