package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/trace"
)

// RPC over a message channel: requests carry a 4-byte correlation id, a
// reactive server handles them at arrival time on the simulated clock,
// and the client matches responses to outstanding calls. This is the
// request-response shape of the paper's motivating distributed
// applications (parallel file system RPCs, cluster coordination),
// running over any buffering semantics.

// rpcHeaderLen prefixes each message with a 4-byte correlation id and a
// 4-byte payload length. The explicit length matters because
// system-allocated transports pad messages to whole buffers (regions are
// page-granular), so the wire length alone does not bound the payload.
const rpcHeaderLen = 8

// ErrRPCShortMessage reports a frame too short to carry the RPC header.
var ErrRPCShortMessage = errors.New("core: RPC message shorter than its header")

// Call is one outstanding RPC.
type Call struct {
	ID    uint32
	Done  bool
	Reply []byte
	Err   error
}

// RPCClient issues calls over a channel endpoint.
type RPCClient struct {
	ep      *Endpoint
	nextID  uint32
	pending map[uint32]*Call
}

// NewRPCClient wraps an endpoint as the client side of an RPC
// connection, installing the reactive response handler.
func NewRPCClient(ep *Endpoint) *RPCClient {
	c := &RPCClient{ep: ep, pending: make(map[uint32]*Call)}
	ep.OnMessage(func(m *Message) {
		defer func() { _ = m.Release() }()
		data := m.Data()
		if len(data) < rpcHeaderLen {
			c.orphan(len(data)) // not correlatable
			return
		}
		id := binary.BigEndian.Uint32(data)
		n := int(binary.BigEndian.Uint32(data[4:]))
		call, ok := c.pending[id]
		if !ok {
			c.orphan(len(data)) // stale or duplicate response
			return
		}
		if n > len(data)-rpcHeaderLen {
			n = len(data) - rpcHeaderLen
		}
		delete(c.pending, id)
		call.Reply = append([]byte(nil), data[rpcHeaderLen:rpcHeaderLen+n]...)
		call.Err = m.Err()
		call.Done = true
	})
	return c
}

// Go issues an asynchronous call; the returned Call completes during a
// subsequent simulation run. Backpressure surfaces as ErrChannelFull.
func (c *RPCClient) Go(req []byte) (*Call, error) {
	c.nextID++
	id := c.nextID
	msg := make([]byte, rpcHeaderLen+len(req))
	binary.BigEndian.PutUint32(msg, id)
	binary.BigEndian.PutUint32(msg[4:], uint32(len(req)))
	copy(msg[rpcHeaderLen:], req)
	call := &Call{ID: id}
	if _, err := c.ep.Send(msg); err != nil {
		return nil, err
	}
	c.pending[id] = call
	return call, nil
}

// orphan accounts a response that cannot be correlated to an
// outstanding call — a frame too short to carry the header, or an id
// that is stale or already answered. These used to vanish silently,
// hiding protocol bugs; now they count in Stats.RPCOrphans and emit an
// rpc.orphan instant when tracing is attached.
func (c *RPCClient) orphan(bytes int) {
	g := c.ep.p.g
	g.stats.RPCOrphans++
	if g.tr != nil {
		g.tr.Instant(trace.CatOp, "rpc.orphan", bytes)
	}
}

// Outstanding reports calls awaiting responses.
func (c *RPCClient) Outstanding() int { return len(c.pending) }

// ServeRPC turns an endpoint into an RPC server: handler runs at request
// arrival on the simulated clock and its return value is sent back with
// the request's correlation id. Handler errors and send failures are
// reported through errFn (which may be nil).
func ServeRPC(ep *Endpoint, handler func(req []byte) []byte, errFn func(error)) {
	report := func(err error) {
		if errFn != nil && err != nil {
			errFn(err)
		}
	}
	ep.OnMessage(func(m *Message) {
		data := m.Data()
		reqErr := m.Err()
		if reqErr == nil && len(data) < rpcHeaderLen {
			reqErr = fmt.Errorf("%w: %d bytes", ErrRPCShortMessage, len(data))
		}
		if reqErr != nil {
			report(reqErr)
			report(m.Release())
			return
		}
		id := binary.BigEndian.Uint32(data)
		n := int(binary.BigEndian.Uint32(data[4:]))
		if n > len(data)-rpcHeaderLen {
			n = len(data) - rpcHeaderLen
		}
		resp := handler(data[rpcHeaderLen : rpcHeaderLen+n])
		// Release first: the reply consumes a send credit that the
		// request's buffer repost frees on the requester's side, and the
		// request data has already been copied out of the buffer.
		report(m.Release())
		msg := make([]byte, rpcHeaderLen+len(resp))
		binary.BigEndian.PutUint32(msg, id)
		binary.BigEndian.PutUint32(msg[4:], uint32(len(resp)))
		copy(msg[rpcHeaderLen:], resp)
		if _, err := ep.Send(msg); err != nil {
			report(fmt.Errorf("core: RPC response: %w", err))
		}
	})
}
