package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/vm"
)

// TestPropertyMixedTraffic drives a testbed with randomized interleaved
// traffic — random semantics, ports, lengths, directions, and posting
// orders — and checks every delivery byte for byte plus the global
// memory invariants afterwards. This is the integration fuzz for the
// whole stack: queueing, demultiplexing, region caching, reference
// counting, and buffer pools all under churn.
func TestPropertyMixedTraffic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, scheme := range []netsim.InputBuffering{netsim.EarlyDemux, netsim.Pooled} {
			if !runMixed(t, rng, scheme) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

type mixedXfer struct {
	sem     Semantics
	port    int
	length  int
	payload []byte
	in      *InputOp
	a2b     bool
}

func runMixed(t *testing.T, rng *rand.Rand, scheme netsim.InputBuffering) bool {
	cfg := DefaultConfig()
	cfg.KernelPoolPages = 128
	tb, err := NewTestbed(TestbedConfig{
		Buffering:     scheme,
		FramesPerHost: 1024,
		PoolPages:     128,
		Genie:         cfg,
	})
	if err != nil {
		t.Log(err)
		return false
	}
	pa := tb.A.Genie.NewProcess()
	pb := tb.B.Genie.NewProcess()
	ps := tb.Model.Platform.PageSize

	// Pre-carve heap arenas so application-allocated buffers never
	// overlap between transfers on the same side.
	const maxPages = 4
	heapA, _ := pa.Brk(24 * maxPages * ps)
	heapB, _ := pb.Brk(24 * maxPages * ps)
	nextA, nextB := 0, 0

	sems := AllSemantics()
	n := rng.Intn(12) + 4
	var xfers []*mixedXfer
	for i := 0; i < n; i++ {
		// One port per transfer: a port models a connection, and
		// early-demultiplexing buffer lists are per connection
		// (Section 6.2.1). Concurrent transfers with different prepare
		// times reorder on the wire, so sharing a connection between
		// unrelated transfers would misdeliver, exactly as on real
		// hardware.
		x := &mixedXfer{
			sem:    sems[rng.Intn(len(sems))],
			port:   i + 1,
			length: (rng.Intn(maxPages) + 1) * ps,
			a2b:    rng.Intn(2) == 0,
		}
		if rng.Intn(3) == 0 {
			x.length -= rng.Intn(ps / 2) // sometimes not page multiple
		}
		x.payload = make([]byte, x.length)
		rng.Read(x.payload)
		xfers = append(xfers, x)
	}

	// Post all inputs, in order per (direction, port).
	for _, x := range xfers {
		rxProc, heap, next := pb, heapB, &nextB
		if !x.a2b {
			rxProc, heap, next = pa, heapA, &nextA
		}
		var dst vm.Addr
		if !x.sem.SystemAllocated() {
			dst = heap + vm.Addr(*next*maxPages*ps)
			*next++
		}
		in, err := rxProc.Input(x.port, x.sem, dst, x.length)
		if err != nil {
			t.Logf("input %v %d: %v", x.sem, x.length, err)
			return false
		}
		x.in = in
	}
	// Send everything, interleaved across directions.
	for _, x := range xfers {
		txProc, heap, next := pa, heapA, &nextA
		if !x.a2b {
			txProc, heap, next = pb, heapB, &nextB
		}
		var src vm.Addr
		if x.sem.SystemAllocated() {
			r, err := txProc.AllocIOBuffer(x.length)
			if err != nil {
				t.Logf("alloc: %v", err)
				return false
			}
			src = r.Start()
		} else {
			src = heap + vm.Addr(*next*maxPages*ps)
			*next++
		}
		if err := txProc.Write(src, x.payload); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		if _, err := txProc.Output(x.port, x.sem, src, x.length); err != nil {
			t.Logf("output %v %d: %v", x.sem, x.length, err)
			return false
		}
	}
	tb.Run()

	// Verify every delivery.
	for i, x := range xfers {
		if !x.in.Done || x.in.Err != nil {
			t.Logf("xfer %d (%v, %dB, port %d): done=%t err=%v", i, x.sem, x.length, x.port, x.in.Done, x.in.Err)
			return false
		}
		rxProc := pb
		if !x.a2b {
			rxProc = pa
		}
		got := make([]byte, x.in.N)
		if err := rxProc.Read(x.in.Addr, got); err != nil {
			t.Logf("xfer %d read: %v", i, err)
			return false
		}
		if !bytes.Equal(got, x.payload[:x.in.N]) || x.in.N != x.length {
			t.Logf("xfer %d (%v, %dB, port %d): payload mismatch (got %d bytes)", i, x.sem, x.length, x.port, x.in.N)
			return false
		}
	}
	if err := tb.A.Phys.CheckInvariants(); err != nil {
		t.Log(err)
		return false
	}
	if err := tb.B.Phys.CheckInvariants(); err != nil {
		t.Log(err)
		return false
	}
	return true
}
