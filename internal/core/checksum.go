package core

import (
	"errors"

	"repro/internal/checksum"
	"repro/internal/cost"
	"repro/internal/mem"
	"repro/internal/netsim"
)

// ChecksumMode selects end-to-end checksumming of datagram payloads —
// the Section 9 discussion made concrete. The checksum travels as a
// 2-byte trailer after the payload.
type ChecksumMode int

// Checksum modes.
const (
	// ChecksumNone disables checksumming (the paper's measured setup;
	// Credit Net AAL5 hardware CRC covered the wire).
	ChecksumNone ChecksumMode = iota
	// ChecksumSeparate verifies with a read-only pass distinct from data
	// passing: with copy semantics, the system buffer is verified before
	// the copyout; with emulated copy, the aligned system buffer is
	// verified before pages are swapped. A failed checksum leaves the
	// application buffer untouched — copy semantics is preserved.
	ChecksumSeparate
	// ChecksumIntegrated folds verification into the copy to the
	// application buffer (integrated layer processing). Cheaper than
	// copy-then-verify, but a failed checksum has already overwritten
	// the application buffer: the semantics silently becomes weak.
	// Emulated copy has no copy to integrate into and falls back to the
	// separate pass.
	ChecksumIntegrated
)

var checksumModeNames = [...]string{"none", "separate", "integrated"}

func (m ChecksumMode) String() string {
	if int(m) < len(checksumModeNames) {
		return checksumModeNames[m]
	}
	return "ChecksumMode?"
}

// Checksum errors.
var (
	// ErrChecksum reports a failed payload verification. For
	// ChecksumIntegrated with copy semantics the application buffer
	// already holds the faulty data when this is returned.
	ErrChecksum = errors.New("core: checksum verification failed")
	// ErrChecksumUnsupported: checksum modes are implemented for copy
	// and emulated copy semantics over early-demultiplexed devices —
	// exactly the data paths the paper's integration discussion is
	// about. In-place input is inherently weak under checksumming
	// (the device writes application memory before verification can
	// run), so the combination is refused rather than silently downgraded.
	ErrChecksumUnsupported = errors.New("core: checksum mode unsupported for this semantics/device")
)

const checksumTrailerLen = 2

// trailerLen returns the extra buffer bytes needed for the checksum
// trailer under the active mode for this semantics (0 when off).
func (g *Genie) trailerLen(sem Semantics) int {
	if ok, err := g.checksumApplies(sem); ok && err == nil {
		return checksumTrailerLen
	}
	return 0
}

// checksumApplies reports whether the configured mode covers the
// semantics/device combination, erroring for unsupported ones.
func (g *Genie) checksumApplies(sem Semantics) (bool, error) {
	if g.cfg.Checksum == ChecksumNone {
		return false, nil
	}
	if sem != Copy && sem != EmulatedCopy {
		return false, ErrChecksumUnsupported
	}
	if g.nic.Buffering() != netsim.EarlyDemux {
		return false, ErrChecksumUnsupported
	}
	return true, nil
}

// checksumVerify is a local alias so the dispose paths read cleanly.
func checksumVerify(data []byte, sum uint16) bool { return checksum.Verify(data, sum) }

// appendTrailer attaches the payload checksum as a big-endian trailer.
// Checksumming is an inherently content-touching operation, so the
// payload is materialized here even on the symbolic plane (the model
// charges a per-byte checksum pass for it anyway); the trailer itself
// is appended as a 2-byte literal without disturbing the payload runs.
func appendTrailer(payload mem.Buf) mem.Buf {
	sum := checksum.Sum(payload.Resolve())
	return payload.Append(mem.BufBytes([]byte{byte(sum >> 8), byte(sum)}))
}

// splitTrailer separates payload and checksum.
func splitTrailer(data []byte) (payload []byte, sum uint16) {
	n := len(data) - checksumTrailerLen
	return data[:n], uint16(data[n])<<8 | uint16(data[n+1])
}

// verifyCopyInput implements checksummed dispose for copy semantics with
// early demultiplexing. It returns the charges and whether the payload
// was delivered to the application buffer.
func (g *Genie) verifyCopyInput(in *InputOp, data []byte, sum uint16) (ch []charge, delivered bool, err error) {
	n := len(data)
	switch g.cfg.Checksum {
	case ChecksumSeparate:
		// Verify in the system buffer first; only good data reaches the
		// application.
		ch = append(ch, charge{cost.ChecksumRead, n})
		if !checksum.Verify(data, sum) {
			return ch, false, ErrChecksum
		}
		if err := in.proc.as.Poke(in.va, data); err != nil {
			return ch, false, err
		}
		ch = append(ch, charge{cost.Copyout, n})
		return ch, true, nil

	case ChecksumIntegrated:
		// One pass: the copy happens regardless of the outcome. On
		// failure the application buffer holds the faulty data — the
		// semantic weakening the paper warns about, observable here.
		if err := in.proc.as.Poke(in.va, data); err != nil {
			return ch, false, err
		}
		ch = append(ch, charge{cost.ChecksumCopy, n})
		if !checksum.Verify(data, sum) {
			return ch, true, ErrChecksum
		}
		return ch, true, nil
	}
	return nil, false, ErrChecksumUnsupported
}
