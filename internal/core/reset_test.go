package core

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/vm"
)

// runResetTransfer performs one measured transfer on an existing
// testbed (fresh or Reset) and returns the end-to-end latency and the
// engine step count for the run. It fails the test on any transfer or
// integrity error.
func runResetTransfer(t *testing.T, tb *Testbed, sem Semantics, length int) (latencyUS float64, steps uint64) {
	t.Helper()
	startSteps := tb.Eng.Steps()
	sender := tb.A.Genie.NewProcess()
	receiver := tb.B.Genie.NewProcess()
	tb.A.Genie.Instr().Enabled = true
	tb.B.Genie.Instr().Enabled = true

	payload := make([]byte, length)
	for i := range payload {
		payload[i] = byte(i*13 + 7)
	}
	ps := tb.Model.Platform.PageSize
	var srcVA, dstVA vm.Addr
	if sem.SystemAllocated() {
		r, err := sender.AllocIOBuffer(length)
		if err != nil {
			t.Fatal(err)
		}
		srcVA = r.Start()
	} else {
		va, err := sender.Brk(length + 2*ps)
		if err != nil {
			t.Fatal(err)
		}
		srcVA = va
		dva, err := receiver.Brk(length + 2*ps)
		if err != nil {
			t.Fatal(err)
		}
		dstVA = dva
	}
	if err := sender.Write(srcVA, payload); err != nil {
		t.Fatal(err)
	}
	out, in, err := tb.Transfer(sender, receiver, 1, sem, srcVA, dstVA, length)
	if err != nil {
		t.Fatalf("%v transfer: %v", sem, err)
	}
	got := make([]byte, in.N)
	if err := receiver.Read(in.Addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("%v: corrupt byte %d after transfer", sem, i)
		}
	}
	return in.CompletedAt.Sub(out.StartedAt).Micros(), tb.Eng.Steps() - startSteps
}

// checkPristine asserts every observable of the testbed matches the
// given freshly built reference: engine rewound, stats zeroed,
// instrumentation off and empty, free lists full, and memory
// invariants intact.
func checkPristine(t *testing.T, tb, fresh *Testbed) {
	t.Helper()
	if now := tb.Eng.Now(); now != 0 {
		t.Errorf("engine clock = %v after Reset, want 0", now)
	}
	if n := tb.Eng.Pending(); n != 0 {
		t.Errorf("engine has %d pending events after Reset", n)
	}
	if s := tb.Eng.Steps(); s != 0 {
		t.Errorf("engine steps = %d after Reset, want 0", s)
	}
	hosts := []struct {
		name      string
		tb, fresh *Host
	}{{"A", tb.A, fresh.A}, {"B", tb.B, fresh.B}}
	for _, h := range hosts {
		if err := h.tb.Phys.CheckInvariants(); err != nil {
			t.Errorf("host %s memory invariants after Reset: %v", h.name, err)
		}
		if got, want := h.tb.Phys.FreeFrames(), h.fresh.Phys.FreeFrames(); got != want {
			t.Errorf("host %s free frames = %d after Reset, fresh testbed has %d", h.name, got, want)
		}
		if got := h.tb.Sys.Stats(); got != h.fresh.Sys.Stats() {
			t.Errorf("host %s VM stats = %+v after Reset, fresh testbed has %+v", h.name, got, h.fresh.Sys.Stats())
		}
		if n := len(h.tb.Sys.Spaces()); n != 0 {
			t.Errorf("host %s has %d live address spaces after Reset", h.name, n)
		}
		if got := h.tb.Genie.Stats(); got != (Stats{}) {
			t.Errorf("host %s Genie stats = %+v after Reset, want zero", h.name, got)
		}
		if got := h.tb.NIC.Stats(); got != (netsim.Stats{}) {
			t.Errorf("host %s NIC stats = %+v after Reset, want zero", h.name, got)
		}
		if h.tb.Genie.Instr().Enabled {
			t.Errorf("host %s instrumentation still enabled after Reset", h.name)
		}
		if n := len(h.tb.Genie.Instr().Records()); n != 0 {
			t.Errorf("host %s instrumentation holds %d records after Reset", h.name, n)
		}
		if pool := h.tb.NIC.Pool(); pool != nil {
			if pool.Free() != pool.Total() {
				t.Errorf("host %s overlay pool %d/%d free after Reset", h.name, pool.Free(), pool.Total())
			}
		}
	}
}

// TestTestbedResetNoLeakage runs a transfer, Resets, and checks that
// (a) every observable matches a freshly built testbed and (b) the same
// transfer replayed on the Reset testbed is bit-identical — same
// latency, same number of simulation steps — to both its own first run
// and a fresh testbed's run. Any state leaking through Reset (frames,
// free-list order, engine queue, instrumentation, stats) breaks one of
// the two.
func TestTestbedResetNoLeakage(t *testing.T) {
	const length = 5 * 4096
	schemes := []netsim.InputBuffering{netsim.EarlyDemux, netsim.Pooled, netsim.OutboardBuffering}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := TestbedConfig{Buffering: scheme, OverlayOff: 128}
			tb, err := NewTestbed(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := NewTestbed(cfg)
			if err != nil {
				t.Fatal(err)
			}

			for _, sem := range []Semantics{Copy, Share, Move} {
				lat1, steps1 := runResetTransfer(t, tb, sem, length)
				if err := tb.Reset(); err != nil {
					t.Fatalf("%v: Reset: %v", sem, err)
				}
				checkPristine(t, tb, fresh)

				lat2, steps2 := runResetTransfer(t, tb, sem, length)
				if lat2 != lat1 {
					t.Errorf("%v: latency %.3f us on recycled testbed, %.3f us on first run", sem, lat2, lat1)
				}
				if steps2 != steps1 {
					t.Errorf("%v: %d engine steps on recycled testbed, %d on first run", sem, steps2, steps1)
				}
				latF, stepsF := runResetTransfer(t, fresh, sem, length)
				if lat2 != latF || steps2 != stepsF {
					t.Errorf("%v: recycled testbed ran %.3f us / %d steps, fresh testbed %.3f us / %d steps",
						sem, lat2, steps2, latF, stepsF)
				}
				if err := tb.Reset(); err != nil {
					t.Fatalf("%v: second Reset: %v", sem, err)
				}
				fresh, err = NewTestbed(cfg)
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestTestbedResetDemandPaging asserts Reset re-arms the pageout daemon
// so a recycled testbed still survives memory pressure.
func TestTestbedResetDemandPaging(t *testing.T) {
	genie := DefaultConfig()
	genie.KernelPoolPages = 20
	cfg := TestbedConfig{
		Buffering:     netsim.EarlyDemux,
		FramesPerHost: 36, // exactly the kernel pool + cold set: the hot path must evict
		Genie:         genie,
		DemandPaging:  true,
	}
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// One round of the pressure workload: the sender holds cold buffers
	// so the transfer path has to evict to allocate.
	pressure := func() {
		t.Helper()
		sender := tb.A.Genie.NewProcess()
		receiver := tb.B.Genie.NewProcess()
		const length = 4 * 4096
		for i := 0; i < 8; i++ {
			va, err := sender.Brk(2 * 4096)
			if err != nil {
				t.Fatal(err)
			}
			if err := sender.Write(va, make([]byte, 2*4096)); err != nil {
				t.Fatal(err)
			}
		}
		srcVA, err := sender.Brk(length)
		if err != nil {
			t.Fatal(err)
		}
		dstVA, err := receiver.Brk(length)
		if err != nil {
			t.Fatal(err)
		}
		if err := sender.Write(srcVA, make([]byte, length)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tb.Transfer(sender, receiver, 1, Copy, srcVA, dstVA, length); err != nil {
			t.Fatalf("transfer under pressure: %v", err)
		}
	}

	pressure()
	if tb.A.Sys.Stats().PageOuts == 0 {
		t.Fatal("configuration did not create memory pressure; test proves nothing")
	}
	if err := tb.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	// Without a re-armed reclaimer this run fails with out-of-memory.
	pressure()
	if tb.A.Sys.Stats().PageOuts == 0 {
		t.Error("no pageouts after Reset: the pageout daemon was not re-armed")
	}
}
