// Package cost models the latency of primitive data passing operations.
//
// The baseline model reproduces Table 6 of the OSDI '96 paper: each
// primitive operation has a latency that is linear in the data length,
// aB + b microseconds, measured on the Micron P166 over Credit Net ATM
// at OC-3. Models for other platforms and network rates are derived with
// the paper's Section 8 scaling rules: network-dominated parameters scale
// with the inverse of the net transmission rate, memory-dominated ones
// with the inverse of main-memory copy bandwidth, cache-dominated ones
// between the L2 and memory copy bandwidths, and everything else with CPU
// speed as estimated by SPECint95.
package cost

// Op identifies a primitive data passing operation (paper Table 6, plus
// the buffer-allocation and zeroing steps of Tables 2-4 whose costs the
// paper folds into its estimates).
type Op int

// Primitive data passing operations.
const (
	// Copyin copies output data from application to system buffer (reads
	// typically hit the cache on output).
	Copyin Op = iota
	// Copyout copies input data from system to application buffer (reads
	// come from main memory).
	Copyout
	// Reference performs page referencing: build the physical descriptor,
	// verify access, raise reference counts.
	Reference
	// Unreference drops the I/O references.
	Unreference
	// Wire pins a buffer's pages against pageout.
	Wire
	// Unwire releases the pins.
	Unwire
	// ReadOnly removes write permissions (TCOW protection).
	ReadOnly
	// Invalidate removes all access permissions (move-out hiding).
	Invalidate
	// Swap exchanges pages between system and application buffers.
	Swap
	// RegionCreate allocates a fresh region.
	RegionCreate
	// RegionRemove removes a region from an address space.
	RegionRemove
	// RegionFill attaches input pages to a region.
	RegionFill
	// RegionFillOverlayRefill fills a region from overlay pages and
	// refills the overlay pool (pooled move input).
	RegionFillOverlayRefill
	// RegionMap installs mappings for a freshly filled region.
	RegionMap
	// RegionMarkOut marks a region moving/moved out and enqueues it.
	RegionMarkOut
	// RegionMarkIn marks a region moved in.
	RegionMarkIn
	// RegionCheck verifies a cached region is still present.
	RegionCheck
	// RegionCheckUnrefReinstateMarkIn is the fused emulated-move input
	// dispose: check region, unreference, reinstate accesses, mark in.
	RegionCheckUnrefReinstateMarkIn
	// RegionCheckUnrefMarkIn is the fused emulated-weak-move input
	// dispose: check region, unreference, mark in.
	RegionCheckUnrefMarkIn
	// OverlayAllocate takes overlay pages from the device pool.
	OverlayAllocate
	// Overlay installs overlay pages as the input target.
	Overlay
	// OverlayDeallocate returns overlay pages to the device pool.
	OverlayDeallocate
	// BufAllocate allocates a system or aligned input buffer from the
	// kernel pool. The paper's latency fits imply a negligible cost
	// (buffers come from a cached pool), so the baseline charges zero;
	// the op is still recorded for completeness.
	BufAllocate
	// BufDeallocate returns a system buffer to the kernel pool.
	BufDeallocate
	// OutboardDMA transfers a staged frame from outboard adapter memory
	// into host memory over the I/O bus (outboard buffering only).
	OutboardDMA
	// ChecksumRead is a read-only Internet checksum pass over a buffer
	// (verification after VM-based data passing; Section 9 discussion).
	ChecksumRead
	// ChecksumCopy is an integrated one-pass copy-and-checksum
	// (Clark & Tennenhouse integrated layer processing).
	ChecksumCopy
	// ZeroComplete clears the unused tail of system pages before mapping
	// them to the application (move-semantics protection).
	ZeroComplete
	numOps
)

var opNames = [...]string{
	Copyin:                          "copyin",
	Copyout:                         "copyout",
	Reference:                       "reference",
	Unreference:                     "unreference",
	Wire:                            "wire",
	Unwire:                          "unwire",
	ReadOnly:                        "read-only",
	Invalidate:                      "invalidate",
	Swap:                            "swap",
	RegionCreate:                    "region create",
	RegionRemove:                    "region remove",
	RegionFill:                      "region fill",
	RegionFillOverlayRefill:         "region fill & overlay refill",
	RegionMap:                       "region map",
	RegionMarkOut:                   "region mark out",
	RegionMarkIn:                    "region mark in",
	RegionCheck:                     "region check",
	RegionCheckUnrefReinstateMarkIn: "region check, unreference, reinstate, mark in",
	RegionCheckUnrefMarkIn:          "region check, unreference, mark in",
	OverlayAllocate:                 "overlay allocate",
	Overlay:                         "overlay",
	OverlayDeallocate:               "overlay deallocate",
	BufAllocate:                     "buffer allocate",
	BufDeallocate:                   "buffer deallocate",
	OutboardDMA:                     "outboard DMA",
	ChecksumRead:                    "checksum (read pass)",
	ChecksumCopy:                    "checksum & copy (one pass)",
	ZeroComplete:                    "zero-complete",
}

func (op Op) String() string {
	if op >= 0 && int(op) < len(opNames) {
		return opNames[op]
	}
	return "op?"
}

// Ops returns all operations in declaration order.
func Ops() []Op {
	ops := make([]Op, numOps)
	for i := range ops {
		ops[i] = Op(i)
	}
	return ops
}

// Class is the dominant hardware resource of a model parameter,
// determining how it scales across platforms (Section 8).
type Class int

// Scaling classes.
const (
	// ClassCPU parameters scale inversely with SPECint95.
	ClassCPU Class = iota
	// ClassMemory parameters scale inversely with main-memory copy
	// bandwidth (copyout; zeroing).
	ClassMemory
	// ClassCache parameters scale between the inverses of L2-cache and
	// main-memory copy bandwidth (copyin).
	ClassCache
)

var classNames = [...]string{"CPU-dominated", "memory-dominated", "cache-dominated"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "Class?"
}

// OpClass returns the scaling class of an operation's cost.
func OpClass(op Op) Class {
	switch op {
	case Copyout, ZeroComplete, ChecksumRead, ChecksumCopy:
		return ClassMemory
	case Copyin:
		return ClassCache
	default:
		return ClassCPU
	}
}

// PageTableOp reports whether the operation is dominated by page table
// updates, whose cost the paper notes may diverge from SPECint scaling
// across architectures (and is especially high on multiprocessors).
func PageTableOp(op Op) bool {
	switch op {
	case ReadOnly, Invalidate, Swap, RegionMap, RegionCheckUnrefReinstateMarkIn:
		return true
	}
	return false
}
