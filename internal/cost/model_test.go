package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestBaselineMatchesTable6 checks the baseline against every row of the
// paper's Table 6.
func TestBaselineMatchesTable6(t *testing.T) {
	m := Baseline()
	want := map[Op]Linear{
		Copyin:                          {0.0180, -3},
		Copyout:                         {0.0220, 15},
		Reference:                       {0.000363, 5},
		Unreference:                     {0.000100, 2},
		Wire:                            {0.00141, 18},
		Unwire:                          {0.000237, 10},
		ReadOnly:                        {0.000367, 2},
		Invalidate:                      {0.000373, 2},
		Swap:                            {0.00163, 15},
		RegionCreate:                    {0, 24},
		RegionFill:                      {0.000398, 9},
		RegionFillOverlayRefill:         {0.000716, 11},
		RegionMap:                       {0.000474, 6},
		RegionMarkOut:                   {0, 3},
		RegionMarkIn:                    {0, 1},
		RegionCheck:                     {0, 5},
		RegionCheckUnrefReinstateMarkIn: {0.000507, 11},
		RegionCheckUnrefMarkIn:          {0.000194, 6},
		OverlayAllocate:                 {0, 7},
		Overlay:                         {0, 7},
		OverlayDeallocate:               {0.000344, 12},
	}
	for op, l := range want {
		got := m.OpModel(op)
		if !almost(got.PerByte, l.PerByte, 1e-12) || !almost(got.Fixed, l.Fixed, 1e-9) {
			t.Errorf("%v: got %v, want %v", op, got, l)
		}
	}
}

func TestBaselineBaseLatency(t *testing.T) {
	m := Baseline()
	b := m.Base()
	if !almost(b.PerByte, 0.0598, 1e-6) {
		t.Errorf("base per-byte = %v, want 0.0598", b.PerByte)
	}
	if !almost(b.Fixed, 130, 1e-9) {
		t.Errorf("base fixed = %v, want 130", b.Fixed)
	}
	if got := m.BaseLatency(61440).Micros(); !almost(got, 0.0598*61440+130, 0.01) {
		t.Errorf("BaseLatency(60KB) = %v", got)
	}
}

func TestLinearEval(t *testing.T) {
	l := Linear{PerByte: 0.5, Fixed: 10}
	if got := l.Eval(100).Micros(); got != 60 {
		t.Fatalf("Eval(100) = %v, want 60", got)
	}
	if got := l.Eval(0).Micros(); got != 10 {
		t.Fatalf("Eval(0) = %v, want 10", got)
	}
}

// TestOC12Prediction reproduces the paper's Section 8 extrapolation:
// at OC-12 with 60 KB datagrams and early demultiplexing, throughput is
// ~140 Mbps for copy, ~404 for emulated copy, ~463 for emulated share,
// ~380 for move semantics.
func TestOC12Prediction(t *testing.T) {
	m := NewModel(MicronP166, CreditNetOC12)
	const b = MaxAAL5Datagram
	throughput := func(extra float64) float64 {
		lat := m.BaseLatency(b).Micros() + extra
		return float64(b) * 8 / lat // Mbps (us * Mbit alignment)
	}
	copyLat := m.Cost(Copyin, b).Micros() + m.Cost(Copyout, b).Micros()
	emCopyLat := m.Cost(Reference, b).Micros() + m.Cost(ReadOnly, b).Micros() + m.Cost(Swap, b).Micros()
	emShareLat := m.Cost(Reference, b).Micros() + m.Cost(Unreference, b).Micros()
	moveLat := m.Cost(Reference, b).Micros() + m.Cost(Wire, b).Micros() +
		m.Cost(RegionMarkOut, b).Micros() + m.Cost(Invalidate, b).Micros() +
		m.Cost(RegionCreate, b).Micros() + m.Cost(RegionFill, b).Micros() + m.Cost(RegionMap, b).Micros()

	cases := []struct {
		name      string
		extra     float64
		wantMbps  float64
		tolerance float64
	}{
		{"copy", copyLat, 140, 8},
		{"emulated copy", emCopyLat, 404, 10},
		{"emulated share", emShareLat, 463, 12},
		{"move", moveLat, 380, 10},
	}
	for _, c := range cases {
		got := throughput(c.extra)
		if math.Abs(got-c.wantMbps) > c.tolerance {
			t.Errorf("%s: predicted %.0f Mbps, paper says %.0f", c.name, got, c.wantMbps)
		}
	}
}

// TestScalingClasses verifies the Section 8 scaling rules across the
// derived platforms.
func TestScalingClasses(t *testing.T) {
	base := Baseline()
	for _, p := range []Platform{GatewayP5_90, AlphaStation255} {
		m := NewModel(p, CreditNetOC3)
		// Memory-dominated: copyout per-byte scales with memory BW ratio.
		wantMem := p.MemRatio()
		gotMem := m.OpModel(Copyout).PerByte / base.OpModel(Copyout).PerByte
		if !almost(gotMem, wantMem, 1e-9) {
			t.Errorf("%s: copyout ratio %.3f, want %.3f", p.Name, gotMem, wantMem)
		}
		// Cache-dominated: copyin ratio within the estimated bounds.
		lo, hi := p.CacheRatioBounds()
		gotCache := m.OpModel(Copyin).PerByte / base.OpModel(Copyin).PerByte
		if gotCache < lo-1e-9 || gotCache > hi+1e-9 {
			t.Errorf("%s: copyin ratio %.3f outside [%.3f, %.3f]", p.Name, gotCache, lo, hi)
		}
		// CPU-dominated: every ratio at or above ~the SPECint lower
		// bound within the documented architecture variance.
		cpuLo := p.CPURatioLowerBound()
		for _, op := range Ops() {
			if OpClass(op) != ClassCPU {
				continue
			}
			bl := base.OpModel(op)
			ml := m.OpModel(op)
			if bl.PerByte > 0 {
				r := ml.PerByte / bl.PerByte
				if r < cpuLo*0.5 || r > cpuLo*3.0 {
					t.Errorf("%s: %v per-byte ratio %.2f wildly off CPU bound %.2f", p.Name, op, r, cpuLo)
				}
			}
		}
		_ = cpuLo
	}
}

// TestTable8Bounds reproduces the "estimated" column of Table 8 from the
// Table 5 hardware parameters.
func TestTable8Bounds(t *testing.T) {
	// Gateway P5-90.
	if got := GatewayP5_90.MemRatio(); !almost(got, 2.40, 0.01) {
		t.Errorf("Gateway mem ratio = %.3f, want 2.40", got)
	}
	lo, hi := GatewayP5_90.CacheRatioBounds()
	if !almost(lo, 1.44, 0.01) || !almost(hi, 3.33, 0.01) {
		t.Errorf("Gateway cache bounds = [%.2f, %.2f], want [1.44, 3.33]", lo, hi)
	}
	if got := GatewayP5_90.CPURatioLowerBound(); !almost(got, 1.57, 0.01) {
		t.Errorf("Gateway CPU bound = %.3f, want 1.57", got)
	}
	// AlphaStation.
	if got := AlphaStation255.MemRatio(); !almost(got, 1.00, 0.01) {
		t.Errorf("Alpha mem ratio = %.3f, want 1.00", got)
	}
	lo, hi = AlphaStation255.CacheRatioBounds()
	if !almost(lo, 0.26, 0.01) || !almost(hi, 1.39, 0.01) {
		t.Errorf("Alpha cache bounds = [%.2f, %.2f], want [0.26, 1.39]", lo, hi)
	}
	if got := AlphaStation255.CPURatioLowerBound(); !almost(got, 1.30, 0.01) {
		t.Errorf("Alpha CPU bound = %.3f, want 1.30", got)
	}
}

func TestNetworkScalingOfBase(t *testing.T) {
	oc3 := Baseline()
	oc12 := NewModel(MicronP166, CreditNetOC12)
	ratio := oc12.BasePerByte / oc3.BasePerByte
	if !almost(ratio, 155.0/622.0, 1e-9) {
		t.Errorf("base per-byte ratio = %v, want 155/622", ratio)
	}
	// The fixed term is rate-independent.
	if oc12.BaseFixedHW+oc12.BaseFixedOS != oc3.BaseFixedHW+oc3.BaseFixedOS {
		t.Error("base fixed term changed with network rate")
	}
}

// TestChecksumCostArgument verifies the Section 9 cost relation the
// checksum ablation relies on, on every platform: swap plus a read-only
// verification pass is cheaper than an integrated read-and-write pass,
// which in turn beats copy-then-verify.
func TestChecksumCostArgument(t *testing.T) {
	const b = MaxAAL5Datagram
	for _, p := range Platforms() {
		m := NewModel(p, CreditNetOC3)
		swapVerify := m.Cost(Swap, b) + m.Cost(ChecksumRead, b)
		integrated := m.Cost(ChecksumCopy, b)
		copyVerify := m.Cost(Copyout, b) + m.Cost(ChecksumRead, b)
		if !(swapVerify < integrated && integrated < copyVerify) {
			t.Errorf("%s: swap+read %.0f, integrated %.0f, copy+read %.0f — ordering broken",
				p.Name, swapVerify.Micros(), integrated.Micros(), copyVerify.Micros())
		}
	}
}

// TestOutboardDMADoesNotScale: the PCI bus is identical across the Table
// 5 machines, so outboard DMA costs must not scale.
func TestOutboardDMADoesNotScale(t *testing.T) {
	base := Baseline()
	for _, p := range []Platform{GatewayP5_90, AlphaStation255} {
		m := NewModel(p, CreditNetOC3)
		if m.OpModel(OutboardDMA) != base.OpModel(OutboardDMA) {
			t.Errorf("%s: outboard DMA cost scaled", p.Name)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	a := Baseline()
	b := a.WithOpModel(Swap, Linear{1, 1})
	if a.OpModel(Swap).PerByte == 1 {
		t.Fatal("WithOpModel mutated the original's op table")
	}
	if b.OpModel(Swap).PerByte != 1 {
		t.Fatal("WithOpModel did not apply the override")
	}
	c := a.Clone()
	if c == a || c.OpModel(Swap) != a.OpModel(Swap) {
		t.Fatal("Clone must copy the op table")
	}
}

// TestBaselineSharedReadOnly locks in that the shared Baseline model is
// safe to read concurrently (meaningful under -race): many goroutines
// price operations on the same instance while others derive variants.
func TestBaselineSharedReadOnly(t *testing.T) {
	m := Baseline()
	if Baseline() != m {
		t.Fatal("Baseline must return the shared instance")
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				_ = m.Cost(Copyout, 4096)
				_ = m.OpModel(Swap)
				_ = m.Base()
				_ = m.BaseLatency(61440)
				if i%100 == 0 {
					_ = m.WithOpModel(Swap, Linear{1, 1})
					_ = m.Clone()
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestOpStringsAndClasses(t *testing.T) {
	for _, op := range Ops() {
		if op.String() == "op?" {
			t.Errorf("op %d has no name", int(op))
		}
	}
	if OpClass(Copyout) != ClassMemory || OpClass(Copyin) != ClassCache || OpClass(Swap) != ClassCPU {
		t.Fatal("wrong op classes")
	}
	if OpClass(ChecksumRead) != ClassMemory || OpClass(ChecksumCopy) != ClassMemory {
		t.Fatal("checksum passes must be memory-dominated")
	}
	if !PageTableOp(Swap) || PageTableOp(Copyin) {
		t.Fatal("wrong page-table op classification")
	}
	if ClassCPU.String() == "Class?" || Op(999).String() != "op?" {
		t.Fatal("string fallbacks broken")
	}
}

func TestLANsTable1(t *testing.T) {
	lans := LANs()
	if len(lans) != 5 {
		t.Fatalf("LANs = %d entries, want 5", len(lans))
	}
	if lans[3].Name != "ATM" || lans[3].Year != 1989 || lans[3].Mbps[0] != 155 {
		t.Fatalf("ATM row = %+v", lans[3])
	}
}

// Property: costs are monotone in data length for nonnegative per-byte
// terms (all ops except copyin's negative intercept artifact keep
// nonnegative cost at page-multiple sizes).
func TestPropertyCostMonotone(t *testing.T) {
	m := Baseline()
	prop := func(opRaw uint8, b1, b2 uint16) bool {
		op := Op(int(opRaw) % int(numOps))
		lo, hi := int(b1), int(b2)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m.Cost(op, hi) >= m.Cost(op, lo)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: derived models preserve cost ordering at 60 KB for the ops
// on each semantics' critical path (copy's data passing always costs
// more than emulated copy's on every platform).
func TestPropertyCopyAlwaysWorst(t *testing.T) {
	for _, p := range Platforms() {
		for _, n := range []Network{CreditNetOC3, CreditNetOC12} {
			m := NewModel(p, n)
			b := MaxAAL5Datagram
			copyCost := m.Cost(Copyin, b) + m.Cost(Copyout, b)
			emCopyCost := m.Cost(Reference, b) + m.Cost(ReadOnly, b) + m.Cost(Swap, b)
			if copyCost <= emCopyCost {
				t.Errorf("%s/%s: copy %.0f <= emulated copy %.0f at 60KB",
					p.Name, n.Name, copyCost.Micros(), emCopyCost.Micros())
			}
		}
	}
}
