package cost

// ArchFactor is a per-operation architecture correction applied on top
// of SPECint scaling. The paper observes (Table 8) that CPU-dominated
// parameters scale with SPECint only on average: individual operations
// diverge, mildly on the same architecture (Gateway P5-90) and wildly on
// a different one (AlphaStation 255/233), page-table updates most of
// all. The factors below are deterministic synthetic stand-ins for that
// measured variance; see DESIGN.md's substitution table.
type ArchFactor struct {
	Mult  float64 // applied to the per-byte term
	Fixed float64 // applied to the fixed term
}

// Platform describes one of the machines from the paper's Table 5.
type Platform struct {
	Name       string
	CPU        string
	MHz        int
	SPECint    float64 // SPECint95 (upper bound for P5-90 and Alpha)
	L1KB       int     // per L1 cache (I and D)
	L1BWMbps   float64 // L1 copy bandwidth (bcopy, user level)
	L2KB       int
	L2BWMbps   float64
	MemMB      int
	MemBWMbps  float64
	PageSize   int
	CacheRatio float64 // observed copyin scaling vs the P166 (0 = default)

	ArchFactor map[Op]ArchFactor
}

// CacheRatioBounds returns the paper's estimated bounds for the
// cache-dominated (copyin) scaling ratio relative to the baseline: the
// copyin cost per byte lies between 1/L2 bandwidth and 1/memory
// bandwidth on each machine, so the ratio lies between
// baseMem/otherL2-style extremes (Table 8).
func (p Platform) CacheRatioBounds() (lo, hi float64) {
	return MicronP166.MemBWMbps / p.L2BWMbps, MicronP166.L2BWMbps / p.MemBWMbps
}

// CPURatioLowerBound returns the estimated lower bound for CPU-dominated
// scaling relative to the baseline (SPECint ratio; a lower bound because
// the paper only had SPECint upper bounds for the slower machines).
func (p Platform) CPURatioLowerBound() float64 {
	return MicronP166.SPECint / p.SPECint
}

// MemRatio returns the estimated memory-dominated scaling ratio.
func (p Platform) MemRatio() float64 {
	return MicronP166.MemBWMbps / p.MemBWMbps
}

// The machines of Table 5.
var (
	// MicronP166 is the paper's baseline platform.
	MicronP166 = Platform{
		Name: "Micron P166", CPU: "Pentium", MHz: 166,
		SPECint: 4.52,
		L1KB:    8, L1BWMbps: 3560,
		L2KB: 256, L2BWMbps: 486,
		MemMB: 32, MemBWMbps: 351,
		PageSize: 4096,
	}

	// GatewayP5_90 has the same architecture as the baseline; its
	// CPU-dominated parameters scale close to the SPECint ratio with
	// modest per-op variance (paper: GM 1.79-1.83, range 1.53-2.59
	// against an estimated lower bound of 1.57).
	GatewayP5_90 = Platform{
		Name: "Gateway P5-90", CPU: "Pentium", MHz: 90,
		SPECint: 2.88, // upper bound (Dell XPS 90 rating)
		L1KB:    8, L1BWMbps: 1910,
		L2KB: 256, L2BWMbps: 244,
		MemMB: 32, MemBWMbps: 146,
		PageSize:   4096,
		CacheRatio: 2.46, // observed copyin scaling (Table 8)
		ArchFactor: map[Op]ArchFactor{
			Reference:                       {1.08, 1.10},
			Unreference:                     {1.02, 1.65},
			Wire:                            {1.14, 1.18},
			Unwire:                          {1.05, 1.12},
			ReadOnly:                        {1.18, 1.05},
			Invalidate:                      {1.20, 1.08},
			Swap:                            {1.22, 1.25},
			RegionCreate:                    {1, 1.22},
			RegionRemove:                    {1, 1.22},
			RegionFill:                      {1.10, 1.03},
			RegionFillOverlayRefill:         {1.12, 1.07},
			RegionMap:                       {1.16, 1.01},
			RegionMarkOut:                   {1, 0.97},
			RegionMarkIn:                    {1, 1.00},
			RegionCheck:                     {1, 1.04},
			RegionCheckUnrefReinstateMarkIn: {1.15, 1.12},
			RegionCheckUnrefMarkIn:          {1.06, 1.09},
			OverlayAllocate:                 {1, 1.15},
			Overlay:                         {1, 1.10},
			OverlayDeallocate:               {1.04, 1.20},
		},
	}

	// AlphaStation255 has a substantially different architecture; its
	// CPU-dominated parameters have geometric means consistent with
	// SPECint scaling but much higher variance (paper: GM 1.54-1.64,
	// range 0.47-3.77 against an estimated lower bound of 1.30), the
	// page-table operations diverging most.
	AlphaStation255 = Platform{
		Name: "AlphaStation 255/233", CPU: "21064A", MHz: 233,
		SPECint: 3.48, // SPECint_base95 (unoptimized NetBSD build)
		L1KB:    16, L1BWMbps: 2860,
		L2KB: 1024, L2BWMbps: 1366,
		MemMB: 64, MemBWMbps: 350,
		PageSize:   8192,
		CacheRatio: 0.54, // observed copyin scaling (Table 8)
		ArchFactor: map[Op]ArchFactor{
			Reference:                       {0.92, 0.78},
			Unreference:                     {0.58, 0.36},
			Wire:                            {1.21, 1.35},
			Unwire:                          {0.85, 0.72},
			ReadOnly:                        {2.31, 1.92},
			Invalidate:                      {2.45, 2.10},
			Swap:                            {2.90, 2.88},
			RegionCreate:                    {1, 1.48},
			RegionRemove:                    {1, 1.48},
			RegionFill:                      {0.95, 0.84},
			RegionFillOverlayRefill:         {1.12, 0.97},
			RegionMap:                       {2.52, 2.05},
			RegionMarkOut:                   {1, 0.61},
			RegionMarkIn:                    {1, 0.66},
			RegionCheck:                     {1, 0.70},
			RegionCheckUnrefReinstateMarkIn: {2.18, 1.76},
			RegionCheckUnrefMarkIn:          {0.81, 0.74},
			OverlayAllocate:                 {1, 0.88},
			Overlay:                         {1, 0.92},
			OverlayDeallocate:               {0.90, 1.06},
		},
	}
)

// Platforms returns the three machines of Table 5 in the paper's order.
func Platforms() []Platform {
	return []Platform{MicronP166, GatewayP5_90, AlphaStation255}
}

// Network describes a link configuration.
type Network struct {
	Name     string
	RateMbps float64
}

// Network configurations: the measured OC-3 link and the OC-12 rate used
// for the paper's Section 8 extrapolation.
var (
	CreditNetOC3  = Network{Name: "Credit Net ATM OC-3", RateMbps: 155}
	CreditNetOC12 = Network{Name: "ATM OC-12", RateMbps: 622}
)

// LAN is an entry of the paper's Table 1 (introduction): approximate
// year of introduction and point-to-point bandwidth of popular LANs.
type LAN struct {
	Name string
	Year int
	Mbps []float64
}

// LANs reproduces Table 1.
func LANs() []LAN {
	return []LAN{
		{"Token ring", 1972, []float64{1, 4, 16}},
		{"Ethernet", 1976, []float64{3, 10}},
		{"FDDI", 1987, []float64{100}},
		{"ATM", 1989, []float64{155, 622, 2488}},
		{"HIPPI", 1992, []float64{800, 1600}},
	}
}
