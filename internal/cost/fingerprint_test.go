package cost

import "testing"

// Separately constructed identical models must share a fingerprint —
// the property that lets memo caches keyed on content dedupe across
// Model instances.
func TestFingerprintContentIdentity(t *testing.T) {
	a := NewModel(MicronP166, CreditNetOC3)
	b := NewModel(MicronP166, CreditNetOC3)
	if a == b {
		t.Fatal("NewModel returned the same pointer twice")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical models fingerprint differently: %#x vs %#x",
			a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() != Baseline().Fingerprint() {
		t.Errorf("fresh baseline-config model does not match Baseline(): %#x vs %#x",
			a.Fingerprint(), Baseline().Fingerprint())
	}
}

// Every distinct configuration must fingerprint distinctly.
func TestFingerprintDistinguishesModels(t *testing.T) {
	seen := map[uint64]string{}
	add := func(name string, m *Model) {
		t.Helper()
		if prev, ok := seen[m.Fingerprint()]; ok {
			t.Errorf("%s collides with %s: %#x", name, prev, m.Fingerprint())
			return
		}
		seen[m.Fingerprint()] = name
	}
	for _, p := range Platforms() {
		for _, n := range []Network{CreditNetOC3, CreditNetOC12} {
			add(p.Name+"/"+n.Name, NewModel(p, n))
		}
	}
	add("ablated copyout", Baseline().WithOpModel(Copyout, Linear{0.044, 15}))
	add("zeroed copyout", Baseline().WithOpModel(Copyout, Linear{}))
}

// WithOpModel must recompute the variant's fingerprint and leave the
// receiver's untouched.
func TestFingerprintWithOpModel(t *testing.T) {
	base := Baseline()
	before := base.Fingerprint()
	v := base.WithOpModel(Swap, Linear{0.01, 1})
	if base.Fingerprint() != before {
		t.Error("WithOpModel changed the receiver's fingerprint")
	}
	if v.Fingerprint() == before {
		t.Error("overridden model kept the base fingerprint")
	}
	// Round-tripping the original op model restores the fingerprint.
	back := v.WithOpModel(Swap, base.OpModel(Swap))
	if back.Fingerprint() != before {
		t.Errorf("restoring the op model did not restore the fingerprint: %#x vs %#x",
			back.Fingerprint(), before)
	}
}
