package cost

import (
	"fmt"

	"repro/internal/sim"
)

// Linear is a latency model that is linear in the data length:
// PerByte*B + Fixed microseconds for B bytes.
type Linear struct {
	PerByte float64 // microseconds per byte
	Fixed   float64 // microseconds
}

// Eval returns the latency for b bytes.
func (l Linear) Eval(b int) sim.Duration {
	return sim.Duration(l.PerByte*float64(b) + l.Fixed)
}

func (l Linear) String() string {
	return fmt.Sprintf("%.6g B + %.4g", l.PerByte, l.Fixed)
}

// Model holds the primitive-operation costs and base-latency parameters
// for one platform and network configuration.
//
// A Model is immutable after construction: NewModel fills every field and
// nothing mutates one afterwards, so a single *Model — including the
// shared Baseline — is safe to read concurrently from any number of
// testbeds and experiment workers without locking. Variants are derived
// by value (WithOpModel, Clone), never by mutating a shared instance.
type Model struct {
	Platform Platform
	Net      Network

	ops [numOps]Linear

	// Base latency parameters (Section 8). BasePerByte is
	// network-dominated: the inverse of the net transmission rate after
	// ATM cell and AAL5 framing overheads. The fixed term splits into a
	// hardware part (I/O bus, device and network latencies) and an
	// operating-system part that scales with CPU speed.
	BasePerByte float64
	BaseFixedHW float64
	BaseFixedOS float64

	// CPU utilization accounting (Figure 4). PerCellCPU is the
	// protocol/driver work per 48-byte ATM cell processed at the
	// receiver; FixedKernelCPU is the per-datagram interrupt and
	// syscall-return work. Both overlap with reception, so they consume
	// CPU without appearing in end-to-end latency.
	PerCellCPU     float64
	FixedKernelCPU float64

	// fingerprint is the content hash of every field above, computed at
	// construction (see fingerprint.go). Caches key on it so that
	// separately constructed identical models share memo entries.
	fingerprint uint64
}

// Cost returns the latency of op applied to b bytes.
func (m *Model) Cost(op Op, b int) sim.Duration { return m.ops[op].Eval(b) }

// OpModel returns the linear model for op.
func (m *Model) OpModel(op Op) Linear { return m.ops[op] }

// WithOpModel returns a copy of the model with the linear model for op
// overridden (used by ablations). The receiver is left untouched, which
// keeps shared models immutable.
func (m *Model) WithOpModel(op Op, l Linear) *Model {
	c := *m
	c.ops[op] = l
	c.fingerprint = fingerprintOf(&c)
	return &c
}

// Base returns the base-latency linear model: the end-to-end cost that
// is independent of buffering semantics (application-kernel crossings,
// driver, device, network and interrupt latencies).
func (m *Model) Base() Linear {
	return Linear{PerByte: m.BasePerByte, Fixed: m.BaseFixedHW + m.BaseFixedOS}
}

// BaseLatency returns the base latency for a b-byte datagram.
func (m *Model) BaseLatency(b int) sim.Duration { return m.Base().Eval(b) }

// Clone returns a deep copy of the model, so ablations can mutate costs
// without touching the shared baseline.
func (m *Model) Clone() *Model {
	c := *m
	return &c
}

// ATM constants for the Credit Net link model.
const (
	// CellPayload is the ATM cell payload size in bytes.
	CellPayload = 48
	// CellSize is the full ATM cell size in bytes.
	CellSize = 53
	// MaxAAL5Datagram is the largest page-multiple datagram AAL5 allows
	// on a 4 KB-page machine (60 KB), the sweep limit used in the paper.
	MaxAAL5Datagram = 60 * 1024
)

// linkEfficiency is the measured fraction of the nominal ATM line rate
// available to datagram payload on Credit Net: the 48/53 cell tax
// combined with AAL5 trailers and PCI burst-DMA overhead. The value is
// calibrated so that at OC-3 the base multiplicative term equals the
// paper's measured 0.0598 us/byte (an effective 133.8 Mbps).
const linkEfficiency = 8.0 / (0.0598 * 155)

// baseMult returns the network-dominated base per-byte cost for a
// nominal link rate in Mbps.
func baseMult(rateMbps float64) float64 {
	return 8.0 / (rateMbps * linkEfficiency)
}

// NewModel builds the cost model for a platform and network. The Micron
// P166 at OC-3 yields exactly the paper's Table 6; other configurations
// are derived via the Section 8 scaling rules relative to that baseline.
func NewModel(p Platform, n Network) *Model {
	m := &Model{Platform: p, Net: n}

	// Paper Table 6, measured on the Micron P166 (microseconds, B bytes).
	base := [numOps]Linear{
		Copyin:                          {0.0180, -3},
		Copyout:                         {0.0220, 15},
		Reference:                       {0.000363, 5},
		Unreference:                     {0.000100, 2},
		Wire:                            {0.00141, 18},
		Unwire:                          {0.000237, 10},
		ReadOnly:                        {0.000367, 2},
		Invalidate:                      {0.000373, 2},
		Swap:                            {0.00163, 15},
		RegionCreate:                    {0, 24},
		RegionRemove:                    {0, 24}, // symmetric with create; dispose-time only
		RegionFill:                      {0.000398, 9},
		RegionFillOverlayRefill:         {0.000716, 11},
		RegionMap:                       {0.000474, 6},
		RegionMarkOut:                   {0, 3},
		RegionMarkIn:                    {0, 1},
		RegionCheck:                     {0, 5},
		RegionCheckUnrefReinstateMarkIn: {0.000507, 11},
		RegionCheckUnrefMarkIn:          {0.000194, 6},
		OverlayAllocate:                 {0, 7},
		Overlay:                         {0, 7},
		OverlayDeallocate:               {0.000344, 12},
		BufAllocate:                     {0, 0},       // cached pool allocation; negligible per the paper's fits
		BufDeallocate:                   {0, 0},       // pool return; negligible
		OutboardDMA:                     {0.0168, 5},  // PCI burst DMA from adapter memory (~475 Mbps effective)
		ChecksumRead:                    {0.0120, 5},  // read-only pass: one memory access per byte
		ChecksumCopy:                    {0.0240, 15}, // read+write+add: slightly above copyout
		ZeroComplete:                    {0.0220, 0},  // memory-write bound, like copyout
	}

	cpuRatio := MicronP166.SPECint / p.SPECint
	memRatio := MicronP166.MemBWMbps / p.MemBWMbps
	cacheRatio := p.CacheRatio
	if cacheRatio == 0 {
		cacheRatio = memRatio // default: copyin scales like memory
	}

	for op := Op(0); op < numOps; op++ {
		l := base[op]
		if op == OutboardDMA {
			// I/O bus transfers are bound by the (identical) PCI bus on
			// every platform; they do not scale with CPU or memory speed.
			m.ops[op] = l
			continue
		}
		switch OpClass(op) {
		case ClassMemory:
			l.PerByte *= memRatio
			// Memory-dominated fixed terms are negligible per the paper;
			// keep the baseline value CPU-scaled.
			l.Fixed *= cpuRatio
		case ClassCache:
			l.PerByte *= cacheRatio
			l.Fixed *= cacheRatio
		default:
			f := p.ArchFactor[op]
			if f.Mult == 0 {
				f.Mult = 1
			}
			if f.Fixed == 0 {
				f.Fixed = 1
			}
			l.PerByte *= cpuRatio * f.Mult
			l.Fixed *= cpuRatio * f.Fixed
		}
		m.ops[op] = l
	}

	// Base latency: 0.0598B + 130 on the baseline. The fixed term splits
	// into ~60 us of bus/device/network latency and ~70 us of OS
	// overhead that scales with CPU speed.
	m.BasePerByte = baseMult(n.RateMbps)
	m.BaseFixedHW = 60
	m.BaseFixedOS = 70 * cpuRatio

	// Figure 4 calibration: per-cell protocol work and per-datagram
	// fixed kernel work at the receiver, both CPU-dominated.
	m.PerCellCPU = 0.20 * cpuRatio
	m.FixedKernelCPU = 45 * cpuRatio
	m.fingerprint = fingerprintOf(m)
	return m
}

// baseline is the shared reference model. Models are immutable after
// construction, so one instance serves every testbed; this removes a
// Model construction from the per-measurement hot path.
var baseline = NewModel(MicronP166, CreditNetOC3)

// Baseline returns the paper's reference configuration: Micron P166 over
// Credit Net ATM at OC-3. The returned model is shared and must not be
// mutated; derive variants with WithOpModel or Clone.
func Baseline() *Model { return baseline }
