package cost

import "math"

// The fingerprint is a content hash of everything that determines a
// model's behaviour: every operation's linear fit, the base-latency and
// CPU-accounting parameters, and the platform geometry (page size) that
// shapes charge sequences downstream. Two separately constructed models
// with identical content hash identically, so memo caches keyed by
// fingerprint share entries that pointer-keyed caches would miss.
//
// The hash is FNV-1a over the little-endian IEEE-754 bits of each
// float64 and the values of each integer field, folded in declaration
// order. Op order is the Op enum order, which is fixed, so the
// fingerprint is deterministic across runs and platforms.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnv1a folds one 64-bit word into the hash, byte by byte.
func fnv1a(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvFloat(h uint64, f float64) uint64 { return fnv1a(h, math.Float64bits(f)) }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	// Terminate so concatenated strings cannot collide by reslicing.
	return fnv1a(h, uint64(len(s)))
}

// fingerprintOf computes the content hash of a fully constructed model.
func fingerprintOf(m *Model) uint64 {
	h := uint64(fnvOffset)
	h = fnvString(h, m.Platform.Name)
	h = fnv1a(h, uint64(m.Platform.PageSize))
	h = fnvString(h, m.Net.Name)
	h = fnvFloat(h, m.Net.RateMbps)
	for op := Op(0); op < numOps; op++ {
		h = fnvFloat(h, m.ops[op].PerByte)
		h = fnvFloat(h, m.ops[op].Fixed)
	}
	h = fnvFloat(h, m.BasePerByte)
	h = fnvFloat(h, m.BaseFixedHW)
	h = fnvFloat(h, m.BaseFixedOS)
	h = fnvFloat(h, m.PerCellCPU)
	h = fnvFloat(h, m.FixedKernelCPU)
	return h
}

// Fingerprint returns the model's content hash, computed once at
// construction. Models with equal fingerprints are behaviourally
// identical: every charge, base-latency term, and page-geometry
// decision agrees.
func (m *Model) Fingerprint() uint64 { return m.fingerprint }
