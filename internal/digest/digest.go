// Package digest provides the determinism fingerprint shared by the
// cluster benchmarks and the closed-loop workload engine. Every
// order-sensitive observation — a delivery record, a stat snapshot, a
// latency sample — is folded into one FNV-64a stream; two runs are
// bit-identical exactly when their digests match. The fold is
// insertion-order sensitive on purpose: callers must feed records in a
// canonical order (round, channel, client index), and any worker-count-
// dependent reordering shows up as a digest mismatch.
package digest

import (
	"fmt"
	"hash"
	"hash/fnv"
)

// Digest folds formatted records into an FNV-64a hash and counts how
// many record-sized units were folded (callers decide the unit — the
// cluster bench counts deliveries, the workload engine counts
// completed operations).
type Digest struct {
	h       hash.Hash64
	records uint64
}

// New returns an empty digest.
func New() *Digest {
	return &Digest{h: fnv.New64a()}
}

// Addf folds a formatted record into the hash. Use %x for floats:
// decimal formatting is exact for IEEE doubles only at absurd widths,
// while the hex form is bit-faithful and compact.
func (d *Digest) Addf(format string, args ...any) {
	fmt.Fprintf(d.h, format, args...)
}

// Record advances the record counter by one.
func (d *Digest) Record() { d.records++ }

// Records returns the number of records folded so far.
func (d *Digest) Records() uint64 { return d.records }

// Sum64 returns the current hash value.
func (d *Digest) Sum64() uint64 { return d.h.Sum64() }

// Hex returns the hash as a fixed-width hex string, the form reports
// and JSON blocks carry.
func (d *Digest) Hex() string { return fmt.Sprintf("%016x", d.h.Sum64()) }

// PayloadSum is the sampling checksum folded per delivered payload: an
// FNV-32a over a fixed sample of byte positions. The sampled set is the
// head (up to 64 bytes), a 101-byte stride through the body, and the
// final byte; each sampled position is mixed exactly once, in ascending
// position order. Full-byte sums would dominate the benchmarks' serial
// app-time section and mask engine self-speedup; the head carries the
// per-message stamp that distinguishes every message anyway, the stride
// catches gross body corruption, and the final byte catches
// truncation-with-padding.
//
// (An earlier version mixed the final byte a second time whenever the
// head or the stride had already covered it, which weakened the
// corruption check: for short payloads a flip of the last byte was
// folded twice, and the sum of a payload could collide with the sum of
// the same bytes sampled through a different overlap. The fold is now
// position-set based, so equal payloads — and only equal sampled
// positions — produce equal sums.)
func PayloadSum(payload []byte) uint32 {
	sum := uint32(2166136261)
	mix := func(b byte) { sum = (sum ^ uint32(b)) * 16777619 }
	n := len(payload)
	head := n
	if head > 64 {
		head = 64
	}
	for _, b := range payload[:head] {
		mix(b)
	}
	strodeLast := false
	for i := head; i < n; i += 101 {
		mix(payload[i])
		strodeLast = i == n-1
	}
	// The final byte, unless the head loop (n <= head) or the stride
	// already mixed it.
	if n > head && !strodeLast {
		mix(payload[n-1])
	}
	return sum
}
