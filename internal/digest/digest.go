// Package digest provides the determinism fingerprint shared by the
// cluster benchmarks and the closed-loop workload engine. Every
// order-sensitive observation — a delivery record, a stat snapshot, a
// latency sample — is folded into one FNV-64a stream; two runs are
// bit-identical exactly when their digests match. The fold is
// insertion-order sensitive on purpose: callers must feed records in a
// canonical order (round, channel, client index), and any worker-count-
// dependent reordering shows up as a digest mismatch.
package digest

import (
	"fmt"
	"hash"
	"hash/fnv"
)

// Digest folds formatted records into an FNV-64a hash and counts how
// many record-sized units were folded (callers decide the unit — the
// cluster bench counts deliveries, the workload engine counts
// completed operations).
type Digest struct {
	h       hash.Hash64
	records uint64
}

// New returns an empty digest.
func New() *Digest {
	return &Digest{h: fnv.New64a()}
}

// Addf folds a formatted record into the hash. Use %x for floats:
// decimal formatting is exact for IEEE doubles only at absurd widths,
// while the hex form is bit-faithful and compact.
func (d *Digest) Addf(format string, args ...any) {
	fmt.Fprintf(d.h, format, args...)
}

// Record advances the record counter by one.
func (d *Digest) Record() { d.records++ }

// Records returns the number of records folded so far.
func (d *Digest) Records() uint64 { return d.records }

// Sum64 returns the current hash value.
func (d *Digest) Sum64() uint64 { return d.h.Sum64() }

// Hex returns the hash as a fixed-width hex string, the form reports
// and JSON blocks carry.
func (d *Digest) Hex() string { return fmt.Sprintf("%016x", d.h.Sum64()) }

// PayloadSum is the sampling checksum folded per delivered payload: an
// FNV-32a over the head (up to 64 bytes) plus a stride through the body
// and the final byte. Full-byte sums would dominate the benchmarks'
// serial app-time section and mask engine self-speedup; the head
// carries the per-message stamp that distinguishes every message
// anyway, and the stride catches gross body corruption.
func PayloadSum(payload []byte) uint32 {
	sum := uint32(2166136261)
	mix := func(b byte) { sum = (sum ^ uint32(b)) * 16777619 }
	head := len(payload)
	if head > 64 {
		head = 64
	}
	for _, b := range payload[:head] {
		mix(b)
	}
	for i := head; i < len(payload); i += 101 {
		mix(payload[i])
	}
	if len(payload) > 0 {
		mix(payload[len(payload)-1])
	}
	return sum
}
