package digest

import (
	"fmt"
	"math"
	"testing"
)

// TestAddfFloatHexBitFaithful: the package doc tells callers to fold
// floats with %x because the hex form is bit-faithful. Verify that two
// floats with distinct bit patterns but close decimal renderings fold
// to different digests, and that equal bit patterns fold identically.
func TestAddfFloatHexBitFaithful(t *testing.T) {
	a, b := New(), New()
	tenth, fifth := 0.1, 0.2
	v := tenth + fifth // runtime sum: 0.30000000000000004, distinct bits from 0.3
	a.Addf("lat=%x\n", v)
	b.Addf("lat=%x\n", 0.3)
	if a.Sum64() == b.Sum64() {
		t.Fatalf("digests collide for bit-distinct floats %v and %v", v, 0.3)
	}
	c := New()
	c.Addf("lat=%x\n", tenth+fifth)
	if a.Sum64() != c.Sum64() {
		t.Fatalf("digests differ for bit-identical floats: %s vs %s", a.Hex(), c.Hex())
	}
	// Negative zero and positive zero have distinct IEEE bit patterns;
	// %x must distinguish them where %v-style decimal may not.
	nz, pz := New(), New()
	nz.Addf("%x", math.Copysign(0, -1))
	pz.Addf("%x", 0.0)
	if nz.Sum64() == pz.Sum64() {
		t.Fatalf("digests collide for -0.0 and +0.0")
	}
}

// TestHexFixedWidth: Hex must always render 16 lower-case hex digits,
// zero-padded — reports byte-compare these strings.
func TestHexFixedWidth(t *testing.T) {
	d := New()
	for i := 0; i < 64; i++ {
		if h := d.Hex(); len(h) != 16 {
			t.Fatalf("Hex() width %d, want 16 (%q)", len(h), h)
		} else if h != fmt.Sprintf("%016x", d.Sum64()) {
			t.Fatalf("Hex() %q does not match %%016x of Sum64", h)
		}
		d.Addf("record %d\n", i)
	}
}

// TestRecordCounting: Record advances the counter by exactly one and
// does not perturb the hash.
func TestRecordCounting(t *testing.T) {
	d := New()
	if d.Records() != 0 {
		t.Fatalf("fresh digest has %d records", d.Records())
	}
	before := d.Sum64()
	for i := 1; i <= 5; i++ {
		d.Record()
		if d.Records() != uint64(i) {
			t.Fatalf("after %d Record calls, Records() = %d", i, d.Records())
		}
	}
	if d.Sum64() != before {
		t.Fatalf("Record perturbed the hash")
	}
}

// refPayloadSum is an independent statement of the intended fold: mix
// each position of the sampled set (head ∪ stride ∪ final) exactly
// once, in ascending order.
func refPayloadSum(payload []byte) uint32 {
	n := len(payload)
	sampled := make([]bool, n)
	for i := 0; i < n && i < 64; i++ {
		sampled[i] = true
	}
	head := min(n, 64)
	for i := head; i < n; i += 101 {
		sampled[i] = true
	}
	if n > 0 {
		sampled[n-1] = true
	}
	sum := uint32(2166136261)
	for i, s := range sampled {
		if s {
			sum = (sum ^ uint32(payload[i])) * 16777619
		}
	}
	return sum
}

// TestPayloadSumMatchesReference pins the fold against the independent
// position-set definition across the overlap cases the old code got
// wrong: payloads shorter than the head (final byte inside the head
// loop), payloads where the stride lands exactly on the final byte, and
// everything nearby.
func TestPayloadSumMatchesReference(t *testing.T) {
	lengths := []int{0, 1, 2, 63, 64, 65, 66, 100, 164, 165, 166, 266, 267, 1000, 4096, 65535}
	for _, n := range lengths {
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(i*131 + 7)
		}
		if got, want := PayloadSum(p), refPayloadSum(p); got != want {
			t.Errorf("PayloadSum(len=%d) = %08x, want %08x", n, got, want)
		}
	}
}

// TestPayloadSumCorruptionDetection: flipping any sampled byte must
// change the sum; flipping an unsampled body byte must not (it is a
// sampling checksum by design).
func TestPayloadSumCorruptionDetection(t *testing.T) {
	for _, n := range []int{1, 5, 64, 65, 165, 166, 400} {
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(i * 31)
		}
		base := PayloadSum(p)
		head := min(n, 64)
		sampled := func(i int) bool {
			if i < head || i == n-1 {
				return true
			}
			return i >= head && (i-head)%101 == 0
		}
		for i := 0; i < n; i++ {
			p[i] ^= 0xff
			changed := PayloadSum(p) != base
			p[i] ^= 0xff
			if sampled(i) && !changed {
				t.Errorf("len=%d: flip of sampled byte %d not detected", n, i)
			}
			if !sampled(i) && changed {
				t.Errorf("len=%d: flip of unsampled byte %d changed the sum", n, i)
			}
		}
	}
}

// TestPayloadSumFinalByteSingleMix is the regression for the original
// double-mix: with the final byte folded exactly once, a 1-byte payload
// must equal the FNV-32a of that single byte.
func TestPayloadSumFinalByteSingleMix(t *testing.T) {
	want := uint32(2166136261) ^ uint32(0xab)
	want *= 16777619
	if got := PayloadSum([]byte{0xab}); got != want {
		t.Fatalf("PayloadSum([1 byte]) = %08x, want single-mix FNV %08x", got, want)
	}
	if got := PayloadSum(nil); got != 2166136261 {
		t.Fatalf("PayloadSum(nil) = %08x, want FNV offset basis", got)
	}
}
