// Package topo describes N-host simulated network topologies.
//
// A Spec is pure description: a host count plus the set of host pairs
// reachable through the switch fabric, with optional wire-parameter
// overrides. The core layer turns a Spec into engine shards, NICs, and
// fabric routes; experiments compose Specs (ring halo exchange, incast
// fan-in) without touching the wiring underneath.
package topo

import "fmt"

// Spec describes an N-host topology. Hosts are dense indices 0..Hosts-1.
// Each entry of Pairs names two hosts that may open channels to each
// other through the fabric. PerByteUS and FixedUS override the cost
// model's base link timing when nonzero; FixedUS is also the cluster's
// lookahead, since it is the minimum latency any cross-host effect can
// have.
type Spec struct {
	Hosts     int
	Pairs     [][2]int
	PerByteUS float64 // per-byte wire time in µs; 0 → cost model base
	FixedUS   float64 // fixed delivery latency in µs; 0 → cost model base
}

// Pair is the degenerate two-host topology the original pairwise
// testbed assumed.
func Pair() Spec {
	return Spec{Hosts: 2, Pairs: [][2]int{{0, 1}}}
}

// Ring connects host i to host (i+1) mod n — the halo-exchange shape.
func Ring(n int) Spec {
	s := Spec{Hosts: n}
	if n == 2 {
		s.Pairs = [][2]int{{0, 1}}
		return s
	}
	for i := 0; i < n; i++ {
		s.Pairs = append(s.Pairs, [2]int{i, (i + 1) % n})
	}
	return s
}

// Incast connects hosts 1..n-1 to host 0 — the fan-in shape where
// many senders converge on one receiver's ports and pools.
func Incast(n int) Spec {
	s := Spec{Hosts: n}
	for i := 1; i < n; i++ {
		s.Pairs = append(s.Pairs, [2]int{i, 0})
	}
	return s
}

// FullMesh connects every host pair.
func FullMesh(n int) Spec {
	s := Spec{Hosts: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.Pairs = append(s.Pairs, [2]int{i, j})
		}
	}
	return s
}

// Validate reports whether the Spec is internally consistent.
func (s Spec) Validate() error {
	if s.Hosts < 1 {
		return fmt.Errorf("topo: need at least 1 host, got %d", s.Hosts)
	}
	if s.PerByteUS < 0 || s.FixedUS < 0 {
		return fmt.Errorf("topo: negative wire parameters (perByte=%v fixed=%v)", s.PerByteUS, s.FixedUS)
	}
	for i, p := range s.Pairs {
		a, b := p[0], p[1]
		if a < 0 || a >= s.Hosts || b < 0 || b >= s.Hosts {
			return fmt.Errorf("topo: pair %d (%d,%d) out of range for %d hosts", i, a, b, s.Hosts)
		}
		if a == b {
			return fmt.Errorf("topo: pair %d connects host %d to itself", i, a)
		}
	}
	return nil
}

// Degree returns the number of pairs host i participates in.
func (s Spec) Degree(host int) int {
	d := 0
	for _, p := range s.Pairs {
		if p[0] == host || p[1] == host {
			d++
		}
	}
	return d
}
