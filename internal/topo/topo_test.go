package topo

import "testing"

func TestConstructors(t *testing.T) {
	if p := Pair(); p.Hosts != 2 || len(p.Pairs) != 1 {
		t.Fatalf("Pair() = %+v", p)
	}
	r := Ring(2)
	if len(r.Pairs) != 1 {
		t.Fatalf("Ring(2) must not duplicate the 0-1 pair: %+v", r.Pairs)
	}
	r = Ring(5)
	if r.Hosts != 5 || len(r.Pairs) != 5 {
		t.Fatalf("Ring(5) = %+v", r)
	}
	for i, p := range r.Pairs {
		if p[0] != i || p[1] != (i+1)%5 {
			t.Fatalf("Ring(5) pair %d = %v", i, p)
		}
	}
	in := Incast(4)
	if in.Hosts != 4 || len(in.Pairs) != 3 {
		t.Fatalf("Incast(4) = %+v", in)
	}
	for _, p := range in.Pairs {
		if p[1] != 0 {
			t.Fatalf("Incast pair %v does not converge on host 0", p)
		}
	}
	fm := FullMesh(4)
	if len(fm.Pairs) != 6 {
		t.Fatalf("FullMesh(4) has %d pairs, want 6", len(fm.Pairs))
	}
	for _, s := range []Spec{Pair(), Ring(2), Ring(5), Incast(4), FullMesh(4)} {
		if err := s.Validate(); err != nil {
			t.Fatalf("constructor spec invalid: %v (%+v)", err, s)
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []Spec{
		{Hosts: 0},
		{Hosts: 2, PerByteUS: -1},
		{Hosts: 2, FixedUS: -1},
		{Hosts: 2, Pairs: [][2]int{{0, 2}}},
		{Hosts: 2, Pairs: [][2]int{{-1, 0}}},
		{Hosts: 2, Pairs: [][2]int{{1, 1}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d (%+v) validated", i, s)
		}
	}
	if err := (Spec{Hosts: 1}).Validate(); err != nil {
		t.Fatalf("single isolated host should be valid: %v", err)
	}
}

func TestDegree(t *testing.T) {
	in := Incast(5)
	if d := in.Degree(0); d != 4 {
		t.Fatalf("Incast(5).Degree(0) = %d, want 4", d)
	}
	if d := in.Degree(3); d != 1 {
		t.Fatalf("Incast(5).Degree(3) = %d, want 1", d)
	}
	if d := Ring(6).Degree(2); d != 2 {
		t.Fatalf("Ring(6).Degree(2) = %d, want 2", d)
	}
}
