package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// generator is one named figure or table producer.
type generator struct {
	name    string
	section string // "figures", "tables", or "ablations"
	fig     func() (experiments.Figure, error)
	tab     func() (experiments.Table, error)
}

// result is one generator's outcome, as written to the -json report.
type result struct {
	Name    string              `json:"name"`
	Section string              `json:"section"`
	WallMS  float64             `json:"wall_ms"`
	Figure  *experiments.Figure `json:"figure,omitempty"`
	Table   *experiments.Table  `json:"table,omitempty"`
}

// report is the top-level -json document, written so future PRs can
// track both the reproduced numbers and the harness's own wall-clock.
type report struct {
	Parallelism int                   `json:"parallelism"`
	GOMAXPROCS  int                   `json:"gomaxprocs"`
	Cache       bool                  `json:"cache"`
	Recycle     bool                  `json:"recycle"`
	DataPlane   string                `json:"data_plane"`
	TotalWallMS float64               `json:"total_wall_ms"`
	Perf        experiments.PerfStats `json:"perf"`
	Results     []result              `json:"results"`
}

// generators lists every figure, table, and ablation in print order.
func generators() []generator {
	fig := func(name string, f func(experiments.Setup) (experiments.Figure, error)) generator {
		return generator{name: name, section: "figures",
			fig: func() (experiments.Figure, error) { return f(experiments.Setup{}) }}
	}
	tabS := func(name, section string, f func(experiments.Setup) (experiments.Table, error)) generator {
		return generator{name: name, section: section,
			tab: func() (experiments.Table, error) { return f(experiments.Setup{}) }}
	}
	tab := func(name, section string, f func() (experiments.Table, error)) generator {
		return generator{name: name, section: section, tab: f}
	}
	return []generator{
		fig("Figure 3", experiments.Figure3),
		fig("Figure 4", experiments.Figure4),
		fig("Figure 5", experiments.Figure5),
		fig("Figure 6", experiments.Figure6),
		fig("Figure 7", experiments.Figure7),
		fig("Outboard (predicted)", experiments.FigureOutboard),
		tabS("Figure 3 (throughput)", "figures", experiments.Figure3Throughput),
		tab("Table 1", "tables", func() (experiments.Table, error) { return experiments.Table1(), nil }),
		tab("Table 5", "tables", func() (experiments.Table, error) { return experiments.Table5(), nil }),
		tabS("Table 6", "tables", experiments.Table6),
		tabS("Table 7", "tables", experiments.Table7),
		tab("Table 8", "tables", experiments.Table8),
		tab("OC-12 prediction", "tables", experiments.TableOC12),
		tab("Throughput (OC-3)", "tables", func() (experiments.Table, error) {
			return experiments.TableThroughput(cost.CreditNetOC3)
		}),
		tab("Throughput (OC-12)", "tables", func() (experiments.Table, error) {
			return experiments.TableThroughput(cost.CreditNetOC12)
		}),
		tab("Ablation: wiring", "ablations", experiments.AblationWiring),
		tab("Ablation: alignment", "ablations", experiments.AblationAlignment),
		tab("Ablation: thresholds", "ablations", experiments.AblationThresholds),
		tab("Ablation: reverse copyout", "ablations", experiments.AblationReverseCopyout),
		tab("Ablation: output protection", "ablations", experiments.AblationOutputProtection),
		tab("Ablation: checksum", "ablations", experiments.AblationChecksum),
		tab("Ablation: pageout", "ablations", experiments.AblationPageout),
	}
}

// run executes one generator, timing its wall clock.
func (g generator) run() (result, error) {
	r := result{Name: g.name, Section: g.section}
	start := time.Now()
	switch {
	case g.fig != nil:
		f, err := g.fig()
		if err != nil {
			return result{}, fmt.Errorf("%s: %w", g.name, err)
		}
		r.Figure = &f
	default:
		t, err := g.tab()
		if err != nil {
			return result{}, fmt.Errorf("%s: %w", g.name, err)
		}
		r.Table = &t
	}
	r.WallMS = float64(time.Since(start).Microseconds()) / 1000
	return r, nil
}

func (r result) render(w io.Writer) {
	if r.Figure != nil {
		r.Figure.Render(w)
	} else if r.Table != nil {
		r.Table.Render(w)
	}
	fmt.Fprintln(w)
}

// runSweepCmd is the default subcommand: regenerate the paper's
// figures, tables, and ablations.
func runSweepCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geniebench sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	figures := fs.Bool("figures", false, "regenerate the figures only")
	tables := fs.Bool("tables", false, "regenerate the tables only")
	ablations := fs.Bool("ablations", false, "run the ablations only")
	csvDir := fs.String("csv", "", "also write each figure as CSV into this directory")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines per sweep (1 = serial)")
	jsonPath := fs.String("json", "",
		"write every figure/table plus wall-clock per generator as JSON to this path")
	nocache := fs.Bool("nocache", false,
		"disable the cross-generator measurement memo (output is identical, only slower)")
	norecycle := fs.Bool("norecycle", false,
		"disable testbed recycling across measurement points")
	dataplane := fs.String("dataplane", "symbolic",
		"payload representation inside the simulator: symbolic or bytes (output is identical)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := fs.String("memprofile", "", "write a heap profile to this path")
	tracePath := fs.String("trace", "",
		"capture one traced exemplar transfer per figure as Chrome trace_event JSON at this path")
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the error and usage
	}
	if *parallel < 1 {
		return usageErrf(fs, stderr, "-parallel must be at least 1, got %d", *parallel)
	}
	plane, err := mem.PlaneByName(*dataplane)
	if err != nil {
		return usageErrf(fs, stderr, "-dataplane: %v", err)
	}
	all := !*figures && !*tables && !*ablations && *tracePath == ""

	experiments.SetParallelism(*parallel)
	experiments.SetCaching(!*nocache)
	experiments.SetRecycling(!*norecycle)
	experiments.SetDataPlane(plane)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return failf(stderr, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return failf(stderr, err)
		}
		defer pprof.StopCPUProfile()
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir); err != nil {
			return failf(stderr, err)
		}
	}

	if *tracePath != "" {
		if err := writeTrace(*tracePath, stderr); err != nil {
			return failf(stderr, err)
		}
	}

	wantSection := func(section string) bool {
		switch section {
		case "figures":
			return all || *figures
		case "tables":
			return all || *tables
		default:
			return all || *ablations
		}
	}

	start := time.Now()
	var results []result
	for _, g := range generators() {
		// -json tracks every generator; printing honors the section flags.
		if *jsonPath == "" && !wantSection(g.section) {
			continue
		}
		r, err := g.run()
		if err != nil {
			return failf(stderr, err)
		}
		results = append(results, r)
		if wantSection(g.section) {
			r.render(stdout)
		}
	}

	perf := experiments.Perf()
	if *jsonPath != "" {
		rep := report{
			Parallelism: *parallel,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Cache:       !*nocache,
			Recycle:     !*norecycle,
			DataPlane:   plane.Name(),
			TotalWallMS: float64(time.Since(start).Microseconds()) / 1000,
			Perf:        perf,
			Results:     results,
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return failf(stderr, err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return failf(stderr, err)
		}
		fmt.Fprintf(stderr, "geniebench: wrote %s (%d generators, %.0f ms total)\n",
			*jsonPath, len(results), rep.TotalWallMS)
	}

	// The performance summary goes to stderr so stdout stays
	// byte-comparable across cache/recycle/parallelism settings.
	fmt.Fprintf(stderr,
		"geniebench: cache %d hits / %d misses / %d single-flight waits; testbeds %d recycled / %d built\n",
		perf.CacheHits, perf.CacheMisses, perf.CacheWaits,
		perf.TestbedsRecycled, perf.TestbedsBuilt)
	if perf.ResetFailures > 0 {
		fmt.Fprintf(stderr, "geniebench: WARNING: %d testbed resets failed (state leak?)\n",
			perf.ResetFailures)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return failf(stderr, err)
		}
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			return failf(stderr, err)
		}
		if err := f.Close(); err != nil {
			return failf(stderr, err)
		}
	}
	return 0
}

// writeTrace re-runs one representative transfer per figure with the
// structured tracer attached and writes all of them into a single Chrome
// trace_event JSON document — one process group per exemplar, so the
// viewer shows each figure's transfer as its own track pair. The runs
// are serial: the bundled trace sinks are not synchronized.
func writeTrace(path string, stderr io.Writer) error {
	exemplars := []struct {
		name  string
		setup experiments.Setup
		sem   core.Semantics
		bytes int
	}{
		{"Figure 3: emulated copy 60KB, early demux",
			experiments.Setup{Scheme: netsim.EarlyDemux}, core.EmulatedCopy, 61440},
		{"Figure 4: share 60KB, early demux",
			experiments.Setup{Scheme: netsim.EarlyDemux}, core.Share, 61440},
		{"Figure 5: emulated copy 2KB, early demux",
			experiments.Setup{Scheme: netsim.EarlyDemux}, core.EmulatedCopy, 2048},
		{"Figure 6: emulated copy 60KB, pooled",
			experiments.Setup{Scheme: netsim.Pooled}, core.EmulatedCopy, 61440},
		{"Figure 7: emulated copy 60KB, pooled, misaligned",
			experiments.Setup{Scheme: netsim.Pooled, DevOff: 1000, AppOffset: 1000},
			core.EmulatedCopy, 61440},
		{"Outboard: emulated copy 60KB",
			experiments.Setup{Scheme: netsim.OutboardBuffering}, core.EmulatedCopy, 61440},
	}
	exp := trace.NewChromeExporter()
	for i, e := range exemplars {
		exp.SetProcess(i+1, e.name)
		s := e.setup
		s.Tracer = trace.New(exp)
		if _, err := experiments.Measure(s, e.sem, e.bytes); err != nil {
			return fmt.Errorf("trace exemplar %q: %w", e.name, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := exp.WriteTo(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "geniebench: wrote %s (%d traced exemplars; load in chrome://tracing or Perfetto)\n",
		path, len(exemplars))
	return nil
}

// writeCSVs regenerates the five figures and writes them as CSV files.
func writeCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gens := map[string]func(experiments.Setup) (experiments.Figure, error){
		"figure3.csv": experiments.Figure3,
		"figure4.csv": experiments.Figure4,
		"figure5.csv": experiments.Figure5,
		"figure6.csv": experiments.Figure6,
		"figure7.csv": experiments.Figure7,
	}
	for name, gen := range gens {
		fig, err := gen(experiments.Setup{})
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		fig.CSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
