// Command geniebench regenerates the paper's evaluation and runs the
// repo's benchmark modes, one subcommand per mode:
//
//	geniebench [sweep]      # figures, tables, ablations (the default)
//	geniebench bigsweep     # million-point analytic sweep + seeded sim spot checks
//	geniebench cluster      # sharded multi-host benchmarks: incast determinism + ring self-speedup
//	geniebench chaos        # fault-injection recovery matrix
//	geniebench workload     # closed-loop backpressure study: semantics x depth x load
//	geniebench storage      # storage-path study: semantics x I/O size over block device + page cache
//
// Every subcommand takes its own flags (see `geniebench <cmd> -h`); all
// of them share -json <path> (machine-readable report) and -parallel N
// (harness worker goroutines). The historical spellings `-bigsweep`,
// `-cluster`, and `-faults <spec>` still work as aliases for their
// subcommands and print a deprecation note on stderr.
//
// # sweep
//
// Regenerates every table and figure of the paper's evaluation next to
// the published values. -figures/-tables/-ablations restrict the
// sections; -csv writes figure CSVs; -trace captures one traced
// exemplar per figure as Chrome trace_event JSON. Measurement points
// fan out across -parallel workers (any count produces byte-identical
// output), identical points are memoized, and testbeds are recycled;
// -nocache and -norecycle restore the cold path. -dataplane selects
// symbolic or materialized payload bytes — output is identical either
// way.
//
// # bigsweep
//
// Evaluates the full cross-product of platforms x networks x schemes x
// semantics x offsets x lengths — about a million points at the default
// -stride 47 — through the closed-form analytic evaluator, while a
// seeded pseudo-random subset (-spotcheck, default one in 4096) re-runs
// through the discrete-event simulator as oracle. Exit status is
// nonzero if the worst relative error exceeds -errbound, or when
// -minspeedup is set and the analytic path is not at least that many
// times faster per point. The same -seed always selects the same
// spot-check set.
//
// # cluster
//
// Exercises the sharded parallel engine: a -hosts incast runs at
// several worker counts (-workers, default 1,4,GOMAXPROCS) and the full
// delivery digest must be byte-identical at all of them; then a ring
// halo exchange measures the engine's self-speedup over its own serial
// execution. Exit status is nonzero on any digest divergence, or when
// -minspeedup is set and the best ring self-speedup falls short.
//
// # chaos
//
// Runs reliable transfers across every buffering scheme and semantics
// family under the seeded fault script of -spec and prints the recovery
// report: injected drops, duplicates, reorderings, corruptions,
// allocation failures, and pool denials must all be recovered and every
// testbed must conserve its resources. Exit status is nonzero if any
// point violated recovery or conservation.
//
// # workload
//
// Drives the closed-loop backpressure study (see internal/workload):
// pipelined clients against a server (-scenario fileserver), a
// fixed-bitrate stream through a bounded queue (stream), or a
// scatter-gather fan-out (fanout), sweeping buffering semantics x queue
// depth x offered load and locating each semantics' rule-3 transition —
// the smallest depth whose heaviest-load point is no longer bimodal.
// The sweep runs at every -workers count and the digests must match
// bit for bit; exit status is nonzero on divergence, or when
// -requiretransition names a semantics whose transition is not finite.
// Independent grid points fan across -pointworkers goroutines (default:
// the shared -parallel setting) while -workers parallelizes inside one
// point's cluster engine; every point reuses a Reset cluster from the
// recycler and the workload-point memo serves repeat worker counts
// without resimulating (-norecycle and -nomemo restore the cold path —
// output is byte-identical either way). -minspeedup additionally times
// the serial cold regime and gates on the optimized speedup over it.
//
// # storage
//
// Sweeps buffering semantics x I/O size x page-cache capacity x dirty
// threshold over the simulated storage data path — a seek/transfer-cost
// block device under a page cache with read-ahead and threshold
// writeback — and reports per-op CPU and latency next to hit ratios and
// writeback-burst accounting, plus the copy-vs-move break-even on the
// read path per cache configuration. The sweep runs at every -workers
// count (point fan-out) and the digests must match bit for bit; exit
// status is nonzero on divergence, or when -requirecrossover is set and
// any configuration fails to locate a finite crossover.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// subcommands lists the dispatch table in help order.
var subcommands = []struct {
	name string
	desc string
	cmd  func(args []string, stdout, stderr io.Writer) int
}{
	{"sweep", "regenerate the paper's figures, tables, and ablations (default)", runSweepCmd},
	{"bigsweep", "million-point analytic sweep with seeded simulated spot checks", runBigSweepCmd},
	{"cluster", "sharded multi-host benchmarks: incast determinism + ring self-speedup", runClusterCmd},
	{"chaos", "fault-injection recovery matrix", runChaosCmd},
	{"workload", "closed-loop backpressure study: semantics x depth x load", runWorkloadCmd},
	{"storage", "storage-path study: semantics x I/O size over block device + page cache", runStorageCmd},
}

// run is the testable entry point: flag or usage errors return 2,
// runtime failures 1, success 0.
func run(args []string, stdout, stderr io.Writer) int {
	name, rest, note := dispatch(args)
	if note != "" {
		fmt.Fprintln(stderr, note)
	}
	for _, sc := range subcommands {
		if sc.name == name {
			return sc.cmd(rest, stdout, stderr)
		}
	}
	fmt.Fprintf(stderr, "geniebench: unknown subcommand %q\n", name)
	printUsage(stderr)
	return 2
}

// dispatch resolves the subcommand: an explicit first argument wins;
// otherwise the legacy mode flags (-bigsweep, -cluster, -faults) are
// recognized as aliases with a deprecation note, and everything else
// falls through to the default sweep.
func dispatch(args []string) (name string, rest []string, note string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:], ""
	}
	for i, a := range args {
		flagName := strings.TrimLeft(a, "-")
		switch {
		case flagName == "bigsweep" || flagName == "cluster":
			// Boolean mode flag: drop it, keep every other flag — the
			// subcommand's FlagSet still accepts the historical names.
			rest = append(append([]string{}, args[:i]...), args[i+1:]...)
			return flagName, rest,
				fmt.Sprintf("geniebench: note: -%s is deprecated; use `geniebench %s`", flagName, flagName)
		case flagName == "faults" || strings.HasPrefix(flagName, "faults="):
			// Value-carrying mode flag: keep it, the chaos FlagSet
			// registers -faults as an alias of -spec.
			return "chaos", args,
				"geniebench: note: -faults is deprecated; use `geniebench chaos -spec <spec>`"
		}
	}
	return "sweep", args, ""
}

func printUsage(w io.Writer) {
	fmt.Fprintf(w, "Usage: geniebench [subcommand] [flags]\n\nSubcommands:\n")
	for _, sc := range subcommands {
		fmt.Fprintf(w, "  %-9s %s\n", sc.name, sc.desc)
	}
	fmt.Fprintf(w, "\nRun `geniebench <subcommand> -h` for that subcommand's flags.\n")
}

// usageErrf reports a flag-validation error with the subcommand's
// usage text; callers return its value (2) as the exit status.
func usageErrf(fs *flag.FlagSet, stderr io.Writer, format string, a ...any) int {
	fmt.Fprintf(stderr, "geniebench: "+format+"\n", a...)
	fs.Usage()
	return 2
}

func failf(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "geniebench:", err)
	return 1
}
