// Command geniebench regenerates every table and figure of the paper's
// evaluation and prints them next to the published values.
//
// Usage:
//
//	geniebench              # everything
//	geniebench -figures     # Figures 3-7 and the outboard prediction
//	geniebench -tables      # Tables 1, 5, 6, 7, 8 and the OC-12 prediction
//	geniebench -ablations   # ablations of Genie's design choices
//	geniebench -parallel 4  # fan measurement points across 4 workers
//	geniebench -json out.json  # machine-readable results + wall-clock
//	geniebench -trace out.json # traced exemplar per figure (chrome://tracing)
//	geniebench -nocache     # disable the measurement memo
//	geniebench -norecycle   # disable testbed recycling
//	geniebench -bigsweep    # million-point analytic sweep + seeded sim spot checks
//	geniebench -cluster     # sharded multi-host benchmarks: incast determinism + ring self-speedup
//	geniebench -dataplane bytes  # materialize payload bytes (default: symbolic)
//	geniebench -faults seed=1,drop=0.25,corrupt=0.1  # chaos mode (see below)
//	geniebench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Big-sweep mode (-bigsweep) evaluates the full cross-product of
// platforms x networks x schemes x semantics x offsets x lengths —
// about a million points at the default -sweepstride 47 — through the
// closed-form analytic evaluator, while a seeded pseudo-random subset
// of points (-spotcheck, default one in 4096) is re-run through the
// discrete-event simulator as oracle. The run reports points/sec, the
// spot-check count, and the worst analytic-vs-simulated relative
// error; the exit status is nonzero if that error exceeds -errbound
// (default 1e-9) or, when -minspeedup is set, if the analytic path is
// not at least that many times faster per point than the simulator.
// The same -sweepseed always selects the same spot-check set.
//
// Cluster mode (-cluster) exercises the sharded parallel engine: a
// 64-host incast (every host sends at one receiver through the switch
// fabric) runs at several worker counts (-clusterworkers, default
// 1,4,GOMAXPROCS) and the full delivery digest — every message's
// arrival time, length, payload checksum, plus per-host adapter and
// framework counters — must be byte-identical at all of them; then a
// ring halo exchange on the materialized bytes plane measures the
// engine's self-speedup over its own serial execution. -json writes
// both reports (CI stores it as BENCH_pr7.json); the exit status is
// nonzero on any digest divergence, or when -minclusterspeedup is set
// and the best ring self-speedup falls short of it.
//
// Chaos mode (-faults) runs reliable transfers across every buffering
// scheme and semantics family under the given seeded fault script and
// prints the recovery report: injected drops, duplicates, reorderings,
// corruptions, allocation failures, and pool denials must all be
// recovered (exactly-once, integrity-checked delivery) and every
// testbed must conserve its resources. The exit status is nonzero if
// any point violated recovery or conservation. The same spec always
// replays the same faults.
//
// Measurement points fan out across -parallel worker goroutines
// (default: GOMAXPROCS). -parallel 1 reproduces the serial path
// bit-for-bit; any worker count produces identical output. Identical
// points across generators are simulated once and memoized, and
// testbeds are recycled across points; -nocache and -norecycle restore
// the cold path — output is byte-identical either way, only wall-clock
// changes. The end-of-run summary (stderr) and the -json report record
// cache hits/misses, single-flight waits, and testbeds recycled vs
// built.
//
// The -dataplane flag selects how the simulator represents payload
// contents: "symbolic" (the default) carries provenance descriptors and
// turns every in-simulator copy into an O(#extents) splice; "bytes"
// materializes every page. Figures and tables are byte-identical on
// either plane — only the harness's own wall-clock differs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// generator is one named figure or table producer.
type generator struct {
	name    string
	section string // "figures", "tables", or "ablations"
	fig     func() (experiments.Figure, error)
	tab     func() (experiments.Table, error)
}

// result is one generator's outcome, as written to the -json report.
type result struct {
	Name    string              `json:"name"`
	Section string              `json:"section"`
	WallMS  float64             `json:"wall_ms"`
	Figure  *experiments.Figure `json:"figure,omitempty"`
	Table   *experiments.Table  `json:"table,omitempty"`
}

// report is the top-level -json document, written so future PRs can
// track both the reproduced numbers and the harness's own wall-clock.
type report struct {
	Parallelism int                   `json:"parallelism"`
	GOMAXPROCS  int                   `json:"gomaxprocs"`
	Cache       bool                  `json:"cache"`
	Recycle     bool                  `json:"recycle"`
	DataPlane   string                `json:"data_plane"`
	TotalWallMS float64               `json:"total_wall_ms"`
	Perf        experiments.PerfStats `json:"perf"`
	Results     []result              `json:"results"`
}

// generators lists every figure, table, and ablation in print order.
func generators() []generator {
	fig := func(name string, f func(experiments.Setup) (experiments.Figure, error)) generator {
		return generator{name: name, section: "figures",
			fig: func() (experiments.Figure, error) { return f(experiments.Setup{}) }}
	}
	tabS := func(name, section string, f func(experiments.Setup) (experiments.Table, error)) generator {
		return generator{name: name, section: section,
			tab: func() (experiments.Table, error) { return f(experiments.Setup{}) }}
	}
	tab := func(name, section string, f func() (experiments.Table, error)) generator {
		return generator{name: name, section: section, tab: f}
	}
	return []generator{
		fig("Figure 3", experiments.Figure3),
		fig("Figure 4", experiments.Figure4),
		fig("Figure 5", experiments.Figure5),
		fig("Figure 6", experiments.Figure6),
		fig("Figure 7", experiments.Figure7),
		fig("Outboard (predicted)", experiments.FigureOutboard),
		tabS("Figure 3 (throughput)", "figures", experiments.Figure3Throughput),
		tab("Table 1", "tables", func() (experiments.Table, error) { return experiments.Table1(), nil }),
		tab("Table 5", "tables", func() (experiments.Table, error) { return experiments.Table5(), nil }),
		tabS("Table 6", "tables", experiments.Table6),
		tabS("Table 7", "tables", experiments.Table7),
		tab("Table 8", "tables", experiments.Table8),
		tab("OC-12 prediction", "tables", experiments.TableOC12),
		tab("Throughput (OC-3)", "tables", func() (experiments.Table, error) {
			return experiments.TableThroughput(cost.CreditNetOC3)
		}),
		tab("Throughput (OC-12)", "tables", func() (experiments.Table, error) {
			return experiments.TableThroughput(cost.CreditNetOC12)
		}),
		tab("Ablation: wiring", "ablations", experiments.AblationWiring),
		tab("Ablation: alignment", "ablations", experiments.AblationAlignment),
		tab("Ablation: thresholds", "ablations", experiments.AblationThresholds),
		tab("Ablation: reverse copyout", "ablations", experiments.AblationReverseCopyout),
		tab("Ablation: output protection", "ablations", experiments.AblationOutputProtection),
		tab("Ablation: checksum", "ablations", experiments.AblationChecksum),
		tab("Ablation: pageout", "ablations", experiments.AblationPageout),
	}
}

// run executes one generator, timing its wall clock.
func (g generator) run() (result, error) {
	r := result{Name: g.name, Section: g.section}
	start := time.Now()
	switch {
	case g.fig != nil:
		f, err := g.fig()
		if err != nil {
			return result{}, fmt.Errorf("%s: %w", g.name, err)
		}
		r.Figure = &f
	default:
		t, err := g.tab()
		if err != nil {
			return result{}, fmt.Errorf("%s: %w", g.name, err)
		}
		r.Table = &t
	}
	r.WallMS = float64(time.Since(start).Microseconds()) / 1000
	return r, nil
}

func (r result) render(w io.Writer) {
	if r.Figure != nil {
		r.Figure.Render(w)
	} else if r.Table != nil {
		r.Table.Render(w)
	}
	fmt.Fprintln(w)
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable entry point: flag validation errors print usage
// and return 2, runtime failures return 1, success returns 0.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geniebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	figures := fs.Bool("figures", false, "regenerate the figures only")
	tables := fs.Bool("tables", false, "regenerate the tables only")
	ablations := fs.Bool("ablations", false, "run the ablations only")
	csvDir := fs.String("csv", "", "also write each figure as CSV into this directory")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines per sweep (1 = serial)")
	jsonPath := fs.String("json", "",
		"write every figure/table plus wall-clock per generator as JSON to this path")
	nocache := fs.Bool("nocache", false,
		"disable the cross-generator measurement memo (output is identical, only slower)")
	norecycle := fs.Bool("norecycle", false,
		"disable testbed recycling across measurement points")
	dataplane := fs.String("dataplane", "symbolic",
		"payload representation inside the simulator: symbolic or bytes (output is identical)")
	bigsweep := fs.Bool("bigsweep", false,
		"run the million-point analytic sweep with seeded simulated spot checks")
	sweepStride := fs.Int("sweepstride", 47,
		"bigsweep length stride over [1, 65535] (larger = fewer points)")
	sweepSeed := fs.Uint64("sweepseed", 1,
		"bigsweep spot-check selection seed (same seed = same spot-check set)")
	spotCheck := fs.Int("spotcheck", 4096,
		"bigsweep: expected points per simulated spot check (negative disables)")
	errBound := fs.Float64("errbound", 1e-9,
		"bigsweep: exit nonzero if the worst spot-check relative error exceeds this")
	minSpeedup := fs.Float64("minspeedup", 0,
		"bigsweep: exit nonzero if analytic/simulated per-point speedup falls below this (0 = no check)")
	cluster := fs.Bool("cluster", false,
		"run the sharded multi-host benchmarks: incast determinism + ring self-speedup")
	clusterHosts := fs.Int("clusterhosts", 64,
		"cluster: incast host count (1 receiver + N-1 senders)")
	clusterRounds := fs.Int("clusterrounds", 4,
		"cluster: lockstep send/drain rounds per workload")
	clusterBytes := fs.Int("clusterbytes", 8192,
		"cluster: incast message payload size in bytes")
	clusterWorkers := fs.String("clusterworkers", "",
		"cluster: comma-separated worker counts to compare (default 1,4,GOMAXPROCS)")
	minClusterSpeedup := fs.Float64("minclusterspeedup", 0,
		"cluster: exit nonzero if the best ring self-speedup falls below this (0 = no gate)")
	faultsFlag := fs.String("faults", "",
		"chaos mode: seeded fault spec, e.g. seed=1,drop=0.25,dup=0.1,reorder=0.1,corrupt=0.05,allocfail=0.02,pooldeny=0.1")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := fs.String("memprofile", "", "write a heap profile to this path")
	tracePath := fs.String("trace", "",
		"capture one traced exemplar transfer per figure as Chrome trace_event JSON at this path")
	if err := fs.Parse(args); err != nil {
		return 2 // flag package already printed the error and usage
	}
	usageErr := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "geniebench: "+format+"\n", a...)
		fs.Usage()
		return 2
	}
	if *parallel < 1 {
		return usageErr("-parallel must be at least 1, got %d", *parallel)
	}
	plane, err := mem.PlaneByName(*dataplane)
	if err != nil {
		return usageErr("-dataplane: %v", err)
	}
	var spec faults.Spec
	if *faultsFlag != "" {
		spec, err = faults.ParseSpec(*faultsFlag)
		if err != nil {
			return usageErr("-faults: %v", err)
		}
		if err := spec.Validate(); err != nil {
			return usageErr("-faults: %v", err)
		}
		if !spec.Enabled() {
			return usageErr("-faults: spec %q injects nothing (set a seed and at least one rate)", *faultsFlag)
		}
	}
	if *sweepStride < 1 {
		return usageErr("-sweepstride must be at least 1, got %d", *sweepStride)
	}
	all := !*figures && !*tables && !*ablations && *tracePath == ""

	experiments.SetParallelism(*parallel)
	experiments.SetCaching(!*nocache)
	experiments.SetRecycling(!*norecycle)
	experiments.SetDataPlane(plane)

	fail := func(err error) int {
		fmt.Fprintln(stderr, "geniebench:", err)
		return 1
	}

	if *faultsFlag != "" {
		return runChaos(spec, stdout, stderr)
	}

	if *cluster {
		if *clusterHosts < 2 {
			return usageErr("-clusterhosts must be at least 2, got %d", *clusterHosts)
		}
		return runCluster(clusterOptions{
			hosts:      *clusterHosts,
			rounds:     *clusterRounds,
			msgBytes:   *clusterBytes,
			workers:    *clusterWorkers,
			minSpeedup: *minClusterSpeedup,
			jsonPath:   *jsonPath,
		}, stdout, stderr)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *bigsweep {
		return runBigSweep(bigSweepOptions{
			stride:     *sweepStride,
			seed:       *sweepSeed,
			spotCheck:  *spotCheck,
			errBound:   *errBound,
			minSpeedup: *minSpeedup,
			parallel:   *parallel,
			jsonPath:   *jsonPath,
		}, stdout, stderr)
	}

	if *csvDir != "" {
		if err := writeCSVs(*csvDir); err != nil {
			return fail(err)
		}
	}

	if *tracePath != "" {
		if err := writeTrace(*tracePath, stderr); err != nil {
			return fail(err)
		}
	}

	wantSection := func(section string) bool {
		switch section {
		case "figures":
			return all || *figures
		case "tables":
			return all || *tables
		default:
			return all || *ablations
		}
	}

	start := time.Now()
	var results []result
	for _, g := range generators() {
		// -json tracks every generator; printing honors the section flags.
		if *jsonPath == "" && !wantSection(g.section) {
			continue
		}
		r, err := g.run()
		if err != nil {
			return fail(err)
		}
		results = append(results, r)
		if wantSection(g.section) {
			r.render(stdout)
		}
	}

	perf := experiments.Perf()
	if *jsonPath != "" {
		rep := report{
			Parallelism: *parallel,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Cache:       !*nocache,
			Recycle:     !*norecycle,
			DataPlane:   plane.Name(),
			TotalWallMS: float64(time.Since(start).Microseconds()) / 1000,
			Perf:        perf,
			Results:     results,
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "geniebench: wrote %s (%d generators, %.0f ms total)\n",
			*jsonPath, len(results), rep.TotalWallMS)
	}

	// The performance summary goes to stderr so stdout stays
	// byte-comparable across cache/recycle/parallelism settings.
	fmt.Fprintf(stderr,
		"geniebench: cache %d hits / %d misses / %d single-flight waits; testbeds %d recycled / %d built\n",
		perf.CacheHits, perf.CacheMisses, perf.CacheWaits,
		perf.TestbedsRecycled, perf.TestbedsBuilt)
	if perf.ResetFailures > 0 {
		fmt.Fprintf(stderr, "geniebench: WARNING: %d testbed resets failed (state leak?)\n",
			perf.ResetFailures)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(err)
		}
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	return 0
}

// bigSweepOptions carries the -bigsweep flag settings into runBigSweep.
type bigSweepOptions struct {
	stride     int
	seed       uint64
	spotCheck  int
	errBound   float64
	minSpeedup float64
	parallel   int
	jsonPath   string
}

// bigsweepDoc is the -json document of a -bigsweep run.
type bigsweepDoc struct {
	Parallelism int                        `json:"parallelism"`
	GOMAXPROCS  int                        `json:"gomaxprocs"`
	Sweep       experiments.BigSweepReport `json:"bigsweep"`
	Perf        experiments.PerfStats      `json:"perf"`
}

// runBigSweep executes the analytic cross-product sweep and enforces
// the spot-check error bound (and optionally a minimum speedup) via the
// exit status.
func runBigSweep(opts bigSweepOptions, stdout, stderr io.Writer) int {
	axes := experiments.DefaultSweepAxes()
	axes.Lengths = nil
	for n := 1; n <= netsim.MaxFrame; n += opts.stride {
		axes.Lengths = append(axes.Lengths, n)
	}
	rep, err := experiments.BigSweep(experiments.BigSweepConfig{
		Axes:           axes,
		Seed:           opts.seed,
		SpotCheckEvery: opts.spotCheck,
		ErrBound:       opts.errBound,
		Workers:        opts.parallel,
	})
	if err != nil {
		fmt.Fprintln(stderr, "geniebench:", err)
		return 1
	}

	fmt.Fprintf(stdout, "bigsweep: %d points in %.2fs (%.0f points/sec)\n",
		rep.Points, rep.ElapsedSec, rep.PointsPerSec)
	fmt.Fprintf(stdout, "bigsweep: %d simulated spot checks, max relative error %g (bound %g)\n",
		rep.SpotChecks, rep.MaxRelErr, rep.ErrBound)
	fmt.Fprintf(stdout, "bigsweep: %.3f us/point analytic vs %.1f us/point simulated (%.0fx)\n",
		rep.AnalyticPointUS, rep.SimulatedPointUS, rep.Speedup)

	if opts.jsonPath != "" {
		doc := bigsweepDoc{
			Parallelism: opts.parallel,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Sweep:       rep,
			Perf:        experiments.Perf(),
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "geniebench:", err)
			return 1
		}
		if err := os.WriteFile(opts.jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "geniebench:", err)
			return 1
		}
		fmt.Fprintf(stderr, "geniebench: wrote %s\n", opts.jsonPath)
	}

	if !rep.BoundOK {
		fmt.Fprintf(stderr, "geniebench: FAIL: max relative error %g exceeds bound %g (worst: %s)\n",
			rep.MaxRelErr, rep.ErrBound, rep.WorstPoint)
		return 1
	}
	if opts.minSpeedup > 0 && rep.Speedup < opts.minSpeedup {
		fmt.Fprintf(stderr, "geniebench: FAIL: speedup %.0fx below required %.0fx\n",
			rep.Speedup, opts.minSpeedup)
		return 1
	}
	return 0
}

// runChaos executes the fault-injection matrix and prints the recovery
// report; any recovery or conservation violation makes the exit status
// nonzero.
func runChaos(spec faults.Spec, stdout, stderr io.Writer) int {
	rep, err := experiments.RunChaos(experiments.ChaosConfig{Spec: spec})
	if err != nil {
		fmt.Fprintln(stderr, "geniebench:", err)
		return 1
	}
	fmt.Fprint(stdout, rep)
	if !rep.OK() {
		return 1
	}
	return 0
}

// writeTrace re-runs one representative transfer per figure with the
// structured tracer attached and writes all of them into a single Chrome
// trace_event JSON document — one process group per exemplar, so the
// viewer shows each figure's transfer as its own track pair. The runs
// are serial: the bundled trace sinks are not synchronized.
func writeTrace(path string, stderr io.Writer) error {
	exemplars := []struct {
		name  string
		setup experiments.Setup
		sem   core.Semantics
		bytes int
	}{
		{"Figure 3: emulated copy 60KB, early demux",
			experiments.Setup{Scheme: netsim.EarlyDemux}, core.EmulatedCopy, 61440},
		{"Figure 4: share 60KB, early demux",
			experiments.Setup{Scheme: netsim.EarlyDemux}, core.Share, 61440},
		{"Figure 5: emulated copy 2KB, early demux",
			experiments.Setup{Scheme: netsim.EarlyDemux}, core.EmulatedCopy, 2048},
		{"Figure 6: emulated copy 60KB, pooled",
			experiments.Setup{Scheme: netsim.Pooled}, core.EmulatedCopy, 61440},
		{"Figure 7: emulated copy 60KB, pooled, misaligned",
			experiments.Setup{Scheme: netsim.Pooled, DevOff: 1000, AppOffset: 1000},
			core.EmulatedCopy, 61440},
		{"Outboard: emulated copy 60KB",
			experiments.Setup{Scheme: netsim.OutboardBuffering}, core.EmulatedCopy, 61440},
	}
	exp := trace.NewChromeExporter()
	for i, e := range exemplars {
		exp.SetProcess(i+1, e.name)
		s := e.setup
		s.Tracer = trace.New(exp)
		if _, err := experiments.Measure(s, e.sem, e.bytes); err != nil {
			return fmt.Errorf("trace exemplar %q: %w", e.name, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := exp.WriteTo(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "geniebench: wrote %s (%d traced exemplars; load in chrome://tracing or Perfetto)\n",
		path, len(exemplars))
	return nil
}

// writeCSVs regenerates the five figures and writes them as CSV files.
func writeCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gens := map[string]func(experiments.Setup) (experiments.Figure, error){
		"figure3.csv": experiments.Figure3,
		"figure4.csv": experiments.Figure4,
		"figure5.csv": experiments.Figure5,
		"figure6.csv": experiments.Figure6,
		"figure7.csv": experiments.Figure7,
	}
	for name, gen := range gens {
		fig, err := gen(experiments.Setup{})
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		fig.CSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
