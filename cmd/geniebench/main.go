// Command geniebench regenerates every table and figure of the paper's
// evaluation and prints them next to the published values.
//
// Usage:
//
//	geniebench            # everything
//	geniebench -figures   # Figures 3-7 and the outboard prediction
//	geniebench -tables    # Tables 1, 5, 6, 7, 8 and the OC-12 prediction
//	geniebench -ablations # ablations of Genie's design choices
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cost"
	"repro/internal/experiments"
)

func main() {
	figures := flag.Bool("figures", false, "regenerate the figures only")
	tables := flag.Bool("tables", false, "regenerate the tables only")
	ablations := flag.Bool("ablations", false, "run the ablations only")
	csvDir := flag.String("csv", "", "also write each figure as CSV into this directory")
	flag.Parse()
	all := !*figures && !*tables && !*ablations

	if *csvDir != "" {
		if err := writeCSVs(*csvDir); err != nil {
			fail(err)
		}
	}
	if all || *figures {
		if err := printFigures(); err != nil {
			fail(err)
		}
	}
	if all || *tables {
		if err := printTables(); err != nil {
			fail(err)
		}
	}
	if all || *ablations {
		if err := printAblations(); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "geniebench:", err)
	os.Exit(1)
}

// writeCSVs regenerates the five figures and writes them as CSV files.
func writeCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gens := map[string]func(experiments.Setup) (experiments.Figure, error){
		"figure3.csv": experiments.Figure3,
		"figure4.csv": experiments.Figure4,
		"figure5.csv": experiments.Figure5,
		"figure6.csv": experiments.Figure6,
		"figure7.csv": experiments.Figure7,
	}
	for name, gen := range gens {
		fig, err := gen(experiments.Setup{})
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		fig.CSV(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func printFigures() error {
	var s experiments.Setup
	for _, gen := range []func(experiments.Setup) (experiments.Figure, error){
		experiments.Figure3, experiments.Figure4, experiments.Figure5,
		experiments.Figure6, experiments.Figure7, experiments.FigureOutboard,
	} {
		fig, err := gen(s)
		if err != nil {
			return err
		}
		fig.Render(os.Stdout)
		fmt.Println()
	}
	thr, err := experiments.Figure3Throughput(s)
	if err != nil {
		return err
	}
	thr.Render(os.Stdout)
	fmt.Println()
	return nil
}

func printTables() error {
	experiments.Table1().Render(os.Stdout)
	fmt.Println()
	experiments.Table5().Render(os.Stdout)
	fmt.Println()

	var s experiments.Setup
	t6, err := experiments.Table6(s)
	if err != nil {
		return err
	}
	t6.Render(os.Stdout)
	fmt.Println()

	t7, err := experiments.Table7(s)
	if err != nil {
		return err
	}
	t7.Render(os.Stdout)
	fmt.Println()

	t8, err := experiments.Table8()
	if err != nil {
		return err
	}
	t8.Render(os.Stdout)
	fmt.Println()

	oc12, err := experiments.TableOC12()
	if err != nil {
		return err
	}
	oc12.Render(os.Stdout)
	fmt.Println()

	for _, net := range []cost.Network{cost.CreditNetOC3, cost.CreditNetOC12} {
		tp, err := experiments.TableThroughput(net)
		if err != nil {
			return err
		}
		tp.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}

func printAblations() error {
	for _, gen := range []func() (experiments.Table, error){
		experiments.AblationWiring,
		experiments.AblationAlignment,
		experiments.AblationThresholds,
		experiments.AblationReverseCopyout,
		experiments.AblationOutputProtection,
		experiments.AblationChecksum,
		experiments.AblationPageout,
	} {
		t, err := gen()
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}
