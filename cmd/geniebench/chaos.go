package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// runChaosCmd parses the chaos subcommand's flags. The canonical
// spelling is -spec; the historical top-level -faults remains
// registered as an alias so `geniebench -faults <spec>` keeps working
// through the dispatch shim.
func runChaosCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geniebench chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var specStr string
	fs.StringVar(&specStr, "spec", "",
		"seeded fault spec, e.g. seed=1,drop=0.25,dup=0.1,reorder=0.1,corrupt=0.05,allocfail=0.02,pooldeny=0.1")
	fs.StringVar(&specStr, "faults", "", "alias for -spec")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = leave harness default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel < 0 {
		return usageErrf(fs, stderr, "-parallel must be at least 1, got %d", *parallel)
	}
	if *parallel > 0 {
		experiments.SetParallelism(*parallel)
	}
	if specStr == "" {
		return usageErrf(fs, stderr, "-faults: a fault spec is required (e.g. -spec seed=1,drop=0.25)")
	}
	spec, err := faults.ParseSpec(specStr)
	if err != nil {
		return usageErrf(fs, stderr, "-faults: %v", err)
	}
	if err := spec.Validate(); err != nil {
		return usageErrf(fs, stderr, "-faults: %v", err)
	}
	if !spec.Enabled() {
		return usageErrf(fs, stderr,
			"-faults: spec %q injects nothing (set a seed and at least one rate)", specStr)
	}
	return runChaos(spec, stdout, stderr)
}

// runChaos executes the fault-injection matrix and prints the recovery
// report; any recovery or conservation violation makes the exit status
// nonzero.
func runChaos(spec faults.Spec, stdout, stderr io.Writer) int {
	rep, err := experiments.RunChaos(experiments.ChaosConfig{Spec: spec})
	if err != nil {
		return failf(stderr, err)
	}
	fmt.Fprint(stdout, rep)
	if !rep.OK() {
		return 1
	}
	return 0
}
