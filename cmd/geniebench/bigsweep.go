package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
	"repro/internal/netsim"
)

// bigSweepOptions carries the bigsweep flag settings into runBigSweep.
type bigSweepOptions struct {
	stride     int
	seed       uint64
	spotCheck  int
	errBound   float64
	minSpeedup float64
	parallel   int
	jsonPath   string
}

// bigsweepDoc is the -json document of a bigsweep run.
type bigsweepDoc struct {
	Parallelism int                        `json:"parallelism"`
	GOMAXPROCS  int                        `json:"gomaxprocs"`
	Sweep       experiments.BigSweepReport `json:"bigsweep"`
	Perf        experiments.PerfStats      `json:"perf"`
}

// runBigSweepCmd parses the bigsweep subcommand's flags. The canonical
// spellings are -stride and -seed; the historical -sweepstride and
// -sweepseed remain registered as aliases.
func runBigSweepCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geniebench bigsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var opts bigSweepOptions
	fs.IntVar(&opts.stride, "stride", 47,
		"length stride over [1, 65535] (larger = fewer points)")
	fs.IntVar(&opts.stride, "sweepstride", 47, "alias for -stride")
	fs.Uint64Var(&opts.seed, "seed", 1,
		"spot-check selection seed (same seed = same spot-check set)")
	fs.Uint64Var(&opts.seed, "sweepseed", 1, "alias for -seed")
	fs.IntVar(&opts.spotCheck, "spotcheck", 4096,
		"expected points per simulated spot check (negative disables)")
	fs.Float64Var(&opts.errBound, "errbound", 1e-9,
		"exit nonzero if the worst spot-check relative error exceeds this")
	fs.Float64Var(&opts.minSpeedup, "minspeedup", 0,
		"exit nonzero if analytic/simulated per-point speedup falls below this (0 = no check)")
	fs.IntVar(&opts.parallel, "parallel", runtime.GOMAXPROCS(0),
		"worker goroutines (1 = serial)")
	fs.StringVar(&opts.jsonPath, "json", "", "write the sweep report as JSON to this path")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if opts.parallel < 1 {
		return usageErrf(fs, stderr, "-parallel must be at least 1, got %d", opts.parallel)
	}
	if opts.stride < 1 {
		return usageErrf(fs, stderr, "-sweepstride must be at least 1, got %d", opts.stride)
	}
	experiments.SetParallelism(opts.parallel)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return failf(stderr, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return failf(stderr, err)
		}
		defer pprof.StopCPUProfile()
	}
	return runBigSweep(opts, stdout, stderr)
}

// runBigSweep executes the analytic cross-product sweep and enforces
// the spot-check error bound (and optionally a minimum speedup) via the
// exit status.
func runBigSweep(opts bigSweepOptions, stdout, stderr io.Writer) int {
	axes := experiments.DefaultSweepAxes()
	axes.Lengths = nil
	for n := 1; n <= netsim.MaxFrame; n += opts.stride {
		axes.Lengths = append(axes.Lengths, n)
	}
	rep, err := experiments.BigSweep(experiments.BigSweepConfig{
		Axes:           axes,
		Seed:           opts.seed,
		SpotCheckEvery: opts.spotCheck,
		ErrBound:       opts.errBound,
		Workers:        opts.parallel,
	})
	if err != nil {
		return failf(stderr, err)
	}

	fmt.Fprintf(stdout, "bigsweep: %d points in %.2fs (%.0f points/sec)\n",
		rep.Points, rep.ElapsedSec, rep.PointsPerSec)
	fmt.Fprintf(stdout, "bigsweep: %d simulated spot checks, max relative error %g (bound %g)\n",
		rep.SpotChecks, rep.MaxRelErr, rep.ErrBound)
	fmt.Fprintf(stdout, "bigsweep: %.3f us/point analytic vs %.1f us/point simulated (%.0fx)\n",
		rep.AnalyticPointUS, rep.SimulatedPointUS, rep.Speedup)

	if opts.jsonPath != "" {
		doc := bigsweepDoc{
			Parallelism: opts.parallel,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Sweep:       rep,
			Perf:        experiments.Perf(),
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return failf(stderr, err)
		}
		if err := os.WriteFile(opts.jsonPath, append(buf, '\n'), 0o644); err != nil {
			return failf(stderr, err)
		}
		fmt.Fprintf(stderr, "geniebench: wrote %s\n", opts.jsonPath)
	}

	if !rep.BoundOK {
		fmt.Fprintf(stderr, "geniebench: FAIL: max relative error %g exceeds bound %g (worst: %s)\n",
			rep.MaxRelErr, rep.ErrBound, rep.WorstPoint)
		return 1
	}
	if opts.minSpeedup > 0 && rep.Speedup < opts.minSpeedup {
		fmt.Fprintf(stderr, "geniebench: FAIL: speedup %.0fx below required %.0fx\n",
			rep.Speedup, opts.minSpeedup)
		return 1
	}
	return 0
}
