package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// runCLI invokes run() with captured streams, restoring the harness's
// package-wide settings afterwards (run() mutates parallelism, caching,
// recycling, and the data plane).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	defer func() {
		experiments.SetParallelism(0)
		experiments.SetCaching(true)
		experiments.SetRecycling(true)
		experiments.ResetPerf()
	}()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// Invalid flag values must exit nonzero with a usage message, not be
// silently clamped or half-applied.
func TestCLIRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "Usage"},
		{"zero parallel", []string{"-parallel", "0"}, "-parallel"},
		{"negative parallel", []string{"-parallel", "-3"}, "-parallel"},
		{"bogus dataplane", []string{"-dataplane", "quantum"}, "-dataplane"},
		{"malformed faults", []string{"-faults", "seed"}, "-faults"},
		{"unknown fault key", []string{"-faults", "seed=1,bogus=0.5"}, "-faults"},
		{"out-of-range fault rate", []string{"-faults", "seed=1,drop=1.5"}, "-faults"},
		{"empty fault spec", []string{"-faults", "seed=0"}, "injects nothing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2; stderr:\n%s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
			if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-parallel int") {
				t.Errorf("no usage text on stderr:\n%s", stderr)
			}
		})
	}
}

// Chaos mode: a pinned benign spec must recover everything and exit 0
// with a report on stdout.
func TestCLIChaosMode(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-faults", "seed=1,drop=0.25,dup=0.1,corrupt=0.1")
	if code != 0 {
		t.Fatalf("exit code %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "recovered") || !strings.Contains(stdout, "retransmits") {
		t.Errorf("chaos report missing expected summary:\n%s", stdout)
	}
}

// A quick real run: one figure, serial, to lock in that the refactored
// entry point still produces output on stdout and the perf summary on
// stderr.
func TestCLIFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure regeneration in -short mode")
	}
	code, stdout, stderr := runCLI(t, "-figures", "-parallel", "2")
	if code != 0 {
		t.Fatalf("exit code %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "Figure 3") {
		t.Errorf("stdout missing Figure 3:\n%.400s", stdout)
	}
	if !strings.Contains(stderr, "cache") {
		t.Errorf("stderr missing perf summary:\n%s", stderr)
	}
}
