package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// runClusterCmd parses the cluster subcommand's flags. The canonical
// spellings are -hosts/-rounds/-bytes/-workers/-minspeedup; the
// historical -cluster* prefixed names remain registered as aliases.
func runClusterCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geniebench cluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var opts clusterOptions
	fs.IntVar(&opts.hosts, "hosts", 64, "incast host count (1 receiver + N-1 senders)")
	fs.IntVar(&opts.hosts, "clusterhosts", 64, "alias for -hosts")
	fs.IntVar(&opts.rounds, "rounds", 4, "lockstep send/drain rounds per workload")
	fs.IntVar(&opts.rounds, "clusterrounds", 4, "alias for -rounds")
	fs.IntVar(&opts.msgBytes, "bytes", 8192, "incast message payload size in bytes")
	fs.IntVar(&opts.msgBytes, "clusterbytes", 8192, "alias for -bytes")
	fs.StringVar(&opts.workers, "workers", "",
		"comma-separated worker counts to compare (default 1,4,GOMAXPROCS)")
	fs.StringVar(&opts.workers, "clusterworkers", "", "alias for -workers")
	fs.Float64Var(&opts.minSpeedup, "minspeedup", 0,
		"exit nonzero if the best ring self-speedup falls below this (0 = no gate)")
	fs.Float64Var(&opts.minSpeedup, "minclusterspeedup", 0, "alias for -minspeedup")
	fs.StringVar(&opts.jsonPath, "json", "", "write both reports as JSON to this path")
	parallel := fs.Int("parallel", 0, "worker goroutines for the harness (0 = leave default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel > 0 {
		experiments.SetParallelism(*parallel)
	}
	if opts.hosts < 2 {
		return usageErrf(fs, stderr, "-clusterhosts must be at least 2, got %d", opts.hosts)
	}
	return runCluster(opts, stdout, stderr)
}

// clusterOptions carries the -cluster flag settings into runCluster.
type clusterOptions struct {
	hosts      int
	rounds     int
	msgBytes   int
	workers    string
	minSpeedup float64
	jsonPath   string
}

// clusterDoc is the -json document of a -cluster run (BENCH_pr7.json in
// CI): both workloads' per-worker-count runs, the determinism verdict,
// and enough environment to interpret the speedup honestly.
type clusterDoc struct {
	GOMAXPROCS int                        `json:"gomaxprocs"`
	NumCPU     int                        `json:"num_cpu"`
	Incast     *experiments.ClusterReport `json:"incast"`
	Ring       *experiments.ClusterReport `json:"ring"`
}

// parseWorkerList parses "1,4,8"; empty means the default set
// {1, 4, GOMAXPROCS}.
func parseWorkerList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var ws []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// runCluster executes the sharded-engine benchmark pair: the 64-host
// incast determinism check (digest byte-compared across worker counts)
// and the ring halo-exchange self-speedup measurement. Exit status is
// nonzero if any worker count's digest diverges from serial, or if
// -minclusterspeedup is set and the best ring self-speedup falls short.
func runCluster(opts clusterOptions, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "geniebench:", err)
		return 1
	}
	workers, err := parseWorkerList(opts.workers)
	if err != nil {
		return fail(fmt.Errorf("-clusterworkers: %w", err))
	}

	incast, err := experiments.RunIncast(experiments.ClusterBenchConfig{
		Hosts:    opts.hosts,
		Rounds:   opts.rounds,
		MsgBytes: opts.msgBytes,
		Workers:  workers,
	})
	if err != nil {
		return fail(err)
	}
	printClusterReport(stdout, incast)

	ring, err := experiments.RunRing(experiments.ClusterBenchConfig{
		Rounds:  opts.rounds * 4, // more rounds: this is the timing vehicle
		Workers: workers,
	})
	if err != nil {
		return fail(err)
	}
	printClusterReport(stdout, ring)

	if opts.jsonPath != "" {
		doc := clusterDoc{
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Incast:     incast,
			Ring:       ring,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(opts.jsonPath, append(buf, '\n'), 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "geniebench: wrote %s\n", opts.jsonPath)
	}

	code := 0
	for _, rep := range []*experiments.ClusterReport{incast, ring} {
		if !rep.Deterministic {
			fmt.Fprintf(stderr, "geniebench: FAIL: %s digests diverge across worker counts\n", rep.Mode)
			code = 1
		}
	}
	if opts.minSpeedup > 0 && ring.BestSpeedup < opts.minSpeedup {
		fmt.Fprintf(stderr, "geniebench: FAIL: ring self-speedup %.2fx (workers=%d) below required %.2fx\n",
			ring.BestSpeedup, ring.BestWorkers, opts.minSpeedup)
		code = 1
	}
	return code
}

// printClusterReport renders one workload's runs: the per-worker-count
// digest lines are byte-stable; the closing verdict line carries the
// wall-clock self-speedup and environment.
func printClusterReport(stdout io.Writer, rep *experiments.ClusterReport) {
	fmt.Fprintf(stdout, "cluster %s: %d hosts, %d rounds, %d-byte messages\n",
		rep.Mode, rep.Hosts, rep.Rounds, rep.MsgBytes)
	for _, r := range rep.Runs {
		fmt.Fprintf(stdout, "cluster %s: workers=%d digest=%s deliveries=%d final=%.3fus\n",
			rep.Mode, r.Workers, r.Digest, r.Deliveries, r.FinalTimeUS)
	}
	verdict := "bit-identical across worker counts"
	if !rep.Deterministic {
		verdict = "DIGESTS DIVERGE"
	}
	fmt.Fprintf(stdout, "cluster %s: %s; best self-speedup %.2fx at %d workers (GOMAXPROCS=%d, NumCPU=%d)\n",
		rep.Mode, verdict, rep.BestSpeedup, rep.BestWorkers, rep.GOMAXPROCS, rep.NumCPU)
}
