package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// The storage subcommand end to end: a trimmed sweep exits 0, prints
// per-point lines, the crossover, and matching digests, and the JSON
// report round-trips with the determinism verdict and perf counters.
func TestCLIStorage(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "storage.json")
	code, stdout, stderr := runCLI(t, "storage",
		"-semantics", "copy,emulated-move",
		"-sizes", "512,8192,61440",
		"-cachepages", "16",
		"-dirty", "4",
		"-workers", "1,2",
		"-requirecrossover",
		"-json", jsonPath,
	)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr:\n%s", code, stderr)
	}
	for _, want := range []string{
		"storage: copy",
		"storage: emulated move",
		"crossover at",
		"digest=",
		"bit-identical across worker counts",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "storage perf:") {
		t.Errorf("stderr missing perf summary:\n%s", stderr)
	}

	buf, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.StorageReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic {
		t.Fatalf("report not deterministic: %+v", rep.Runs)
	}
	if len(rep.Runs) != 2 || rep.Runs[0].Digest != rep.Runs[1].Digest {
		t.Fatalf("runs = %+v", rep.Runs)
	}
	if len(rep.Points) != 6 {
		t.Fatalf("points = %d, want 2 semantics x 3 sizes", len(rep.Points))
	}
	if len(rep.Crossovers) != 1 || rep.Crossovers[0].Bytes == 0 {
		t.Fatalf("crossovers = %+v", rep.Crossovers)
	}
	if rep.Perf.StorageMemoMisses == 0 {
		t.Errorf("perf block missing storage memo counters: %+v", rep.Perf)
	}
}

// Flag validation: bad values exit 2 with usage, not a half-run sweep.
func TestCLIStorageRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-semantics", "teleport"},
		{"-sizes", "0"},
		{"-workers", "0"},
		{"-cachepages", "eight"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, append([]string{"storage"}, args...)...)
		if code != 2 {
			t.Errorf("%v: exit code %d, want 2\nstderr:\n%s", args, code, stderr)
		}
	}
}
