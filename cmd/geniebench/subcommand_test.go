package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// The dispatcher: explicit subcommands route, legacy mode flags alias
// with a deprecation note, and unknown names exit 2 with the
// subcommand list.
func TestCLIDispatch(t *testing.T) {
	t.Run("unknown subcommand", func(t *testing.T) {
		code, _, stderr := runCLI(t, "frobnicate")
		if code != 2 {
			t.Fatalf("exit code %d, want 2", code)
		}
		for _, want := range []string{"unknown subcommand", "Usage", "workload", "bigsweep"} {
			if !strings.Contains(stderr, want) {
				t.Errorf("stderr missing %q:\n%s", want, stderr)
			}
		}
	})
	t.Run("legacy faults alias notes deprecation", func(t *testing.T) {
		code, stdout, stderr := runCLI(t, "-faults", "seed=1,drop=0.25")
		if code != 0 {
			t.Fatalf("exit code %d\nstderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "deprecated") || !strings.Contains(stderr, "geniebench chaos") {
			t.Errorf("no deprecation note on stderr:\n%s", stderr)
		}
		if !strings.Contains(stdout, "recovered") {
			t.Errorf("chaos report missing:\n%s", stdout)
		}
	})
	t.Run("chaos subcommand spec flag", func(t *testing.T) {
		code, stdout, stderr := runCLI(t, "chaos", "-spec", "seed=1,drop=0.25")
		if code != 0 {
			t.Fatalf("exit code %d\nstderr:\n%s", code, stderr)
		}
		if strings.Contains(stderr, "deprecated") {
			t.Errorf("spurious deprecation note for the new spelling:\n%s", stderr)
		}
		if !strings.Contains(stdout, "recovered") {
			t.Errorf("chaos report missing:\n%s", stdout)
		}
	})
	t.Run("chaos requires a spec", func(t *testing.T) {
		code, _, stderr := runCLI(t, "chaos")
		if code != 2 || !strings.Contains(stderr, "-faults") {
			t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
		}
	})
	t.Run("chaos rejects empty spec", func(t *testing.T) {
		code, _, stderr := runCLI(t, "chaos", "-spec", "seed=0")
		if code != 2 || !strings.Contains(stderr, "injects nothing") {
			t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
		}
	})
	t.Run("cluster subcommand canonical flags", func(t *testing.T) {
		code, _, stderr := runCLI(t, "cluster", "-hosts", "1")
		if code != 2 || !strings.Contains(stderr, "-clusterhosts") {
			t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
		}
	})
	t.Run("sweep is the default", func(t *testing.T) {
		// A bad sweep-only flag value proves the default route parses
		// sweep's FlagSet.
		code, _, stderr := runCLI(t, "-dataplane", "quantum")
		if code != 2 || !strings.Contains(stderr, "-dataplane") {
			t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
		}
	})
}

// The workload subcommand end to end: a trimmed sweep exits 0, prints
// per-point lines plus the transition verdict and digest lines, honors
// -json, and the -requiretransition gate distinguishes finite from
// absent transitions.
func TestCLIWorkload(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "wl.json")
	code, stdout, stderr := runCLI(t, "workload",
		"-semantics", "copy,emulated-weak-move",
		"-depths", "1,4", "-loads", "2", "-workers", "1,2",
		"-requiretransition", "copy",
		"-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{
		"workload fileserver",
		"BIMODAL",
		"copy               rule-3 transition at depth 4",
		"emulated weak move rule-3 transition at depth 1",
		"bit-identical across worker counts",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}

	buf, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.WorkloadReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("bad -json document: %v", err)
	}
	if !rep.Deterministic || len(rep.Runs) != 2 || rep.Result == nil {
		t.Errorf("json report inconsistent: %+v", rep)
	}
	if s := rep.Result.Scheme("copy"); s == nil || s.TransitionDepth != 4 {
		t.Errorf("json report copy transition: %+v", s)
	}
}

// The optimization flags: -pointworkers fans grid points out without
// perturbing the digest, -minspeedup times the serial cold regime and
// reports the speedup plus the perf counters, and -nomemo/-norecycle
// run cold while still matching bit for bit.
func TestCLIWorkloadPointWorkers(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "wl.json")
	args := []string{"workload",
		"-semantics", "copy", "-depths", "1,4", "-loads", "0.5,2",
		"-ops", "6", "-workers", "1,2"}
	code, stdout, stderr := runCLI(t, append(args,
		"-pointworkers", "8", "-minspeedup", "0.1", "-json", jsonPath)...)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{"point-workers=8", "speedup", "bit-identical"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "workload perf:") {
		t.Errorf("stderr missing perf summary:\n%s", stderr)
	}
	var rep experiments.WorkloadReport
	buf, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("bad -json document: %v", err)
	}
	if rep.PointWorkers != 8 || !rep.Deterministic {
		t.Errorf("report: point workers %d deterministic %v", rep.PointWorkers, rep.Deterministic)
	}
	if rep.SerialColdSec <= 0 || rep.OptimizedSec <= 0 || rep.Speedup <= 0 {
		t.Errorf("speedup fields missing: cold=%v optimized=%v speedup=%v",
			rep.SerialColdSec, rep.OptimizedSec, rep.Speedup)
	}
	if rep.Perf.WorkloadMemoMisses == 0 {
		t.Errorf("perf block missing workload memo counters: %+v", rep.Perf)
	}

	coldDigest := rep.Runs[0].Digest
	code, stdout, stderr = runCLI(t, append(args, "-nomemo", "-norecycle")...)
	if code != 0 {
		t.Fatalf("cold run exit code %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, coldDigest) {
		t.Errorf("cold run digest differs from optimized run %s:\n%s", coldDigest, stdout)
	}
}

// An unmeetable -minspeedup floor fails the run with exit 1.
func TestCLIWorkloadSpeedupGateFails(t *testing.T) {
	code, _, stderr := runCLI(t, "workload",
		"-semantics", "copy", "-depths", "1", "-loads", "1",
		"-ops", "4", "-workers", "1", "-minspeedup", "1e9")
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "speedup") {
		t.Errorf("stderr missing speedup diagnostic:\n%s", stderr)
	}
}

// The gate fails when the named semantics never leaves the bimodal
// regime — the stream scenario under overload.
func TestCLIWorkloadGateFails(t *testing.T) {
	code, _, stderr := runCLI(t, "workload",
		"-scenario", "stream", "-semantics", "copy",
		"-depths", "2", "-loads", "2", "-ops", "6", "-workers", "1",
		"-requiretransition", "copy")
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "transition") {
		t.Errorf("stderr missing gate diagnostic:\n%s", stderr)
	}
}

// Workload flag validation: unknown semantics, bad lists, and bad fault
// specs are usage errors (exit 2) naming the offending flag.
func TestCLIWorkloadRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown semantics", []string{"-semantics", "telepathy"}, "-semantics"},
		{"bad depth list", []string{"-depths", "1,x"}, "-depths"},
		{"bad load list", []string{"-loads", "0.5,fast"}, "-loads"},
		{"bad worker list", []string{"-workers", "1,none"}, "-workers"},
		{"zero worker", []string{"-workers", "0"}, "-workers"},
		{"malformed faults", []string{"-faults", "seed"}, "-faults"},
		{"unknown scenario", []string{"-scenario", "torrent"}, "scenario"},
		{"bad gate name", []string{"-requiretransition", "telepathy"}, "-requiretransition"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, append([]string{"workload"}, tc.args...)...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2; stderr:\n%s", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}

// Hyphenated semantics spellings resolve to the canonical space-
// separated names, so shells need no quoting.
func TestParseSemanticsList(t *testing.T) {
	sems, err := parseSemanticsList("copy, Emulated-Copy ,weak move")
	if err != nil {
		t.Fatal(err)
	}
	if len(sems) != 3 {
		t.Fatalf("parsed %v", sems)
	}
	for i, want := range []string{"copy", "emulated copy", "weak move"} {
		if sems[i].String() != want {
			t.Errorf("sems[%d] = %q, want %q", i, sems[i], want)
		}
	}
	if _, err := parseSemanticsList("move,bogus"); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Errorf("bad name not diagnosed: %v", err)
	}
}
