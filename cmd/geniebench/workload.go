package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/workload"
)

// parseSemanticsList resolves a comma-separated semantics list against
// the canonical names of core.AllSemantics(). Hyphens may stand in for
// the spaces in multi-word names, so shells need no quoting:
// "copy,emulated-copy" == "copy,emulated copy".
func parseSemanticsList(s string) ([]core.Semantics, error) {
	if s == "" {
		return nil, nil
	}
	canon := func(name string) string {
		return strings.ReplaceAll(strings.TrimSpace(strings.ToLower(name)), "-", " ")
	}
	all := core.AllSemantics()
	var out []core.Semantics
	for _, f := range strings.Split(s, ",") {
		want := canon(f)
		found := false
		for _, sem := range all {
			if canon(sem.String()) == want {
				out = append(out, sem)
				found = true
				break
			}
		}
		if !found {
			names := make([]string, len(all))
			for i, sem := range all {
				names[i] = strings.ReplaceAll(sem.String(), " ", "-")
			}
			return nil, fmt.Errorf("unknown semantics %q (want one of %s)",
				strings.TrimSpace(f), strings.Join(names, ", "))
		}
	}
	return out, nil
}

// parseIntList parses "1,2,4".
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseFloatList parses "0.5,1,2".
func parseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad multiplier %q", f)
		}
		out = append(out, x)
	}
	return out, nil
}

// runWorkloadCmd drives the closed-loop backpressure study: sweep
// semantics × depth × load at every -workers count, digest-compare the
// runs, and locate each semantics' rule-3 transition depth. Exit status
// is nonzero on digest divergence, or when -requiretransition names a
// semantics whose transition is not finite.
func runWorkloadCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geniebench workload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", workload.FileServer,
		"traffic shape: fileserver, stream, or fanout")
	semList := fs.String("semantics", "",
		"comma-separated buffering semantics to sweep, e.g. copy,emulated-copy,share (default all eight)")
	depthList := fs.String("depths", "",
		"comma-separated queue depths in messages (default 1,2,4,8,16)")
	loadList := fs.String("loads", "",
		"comma-separated offered-load multipliers (default 0.5,1,2)")
	clients := fs.Int("clients", 0, "closed-loop clients / fan-out width (0 = default 4)")
	ops := fs.Int("ops", 0, "operations per client (0 = default 12)")
	msgBytes := fs.Int("msgbytes", 0, "response/frame payload bytes (0 = default 2048)")
	think := fs.Float64("think", 0, "base think time in simulated µs at load 1 (0 = default 400)")
	pipeline := fs.Int("pipeline", 0, "outstanding operations per client (0 = default 4)")
	streamRate := fs.Float64("streamrate", 0, "stream target bitrate in MB/s at load 1 (0 = default 12)")
	rto := fs.Float64("rto", 0, "reliable-channel retransmission timeout in µs (0 = default 12000)")
	seed := fs.Uint64("seed", 0, "think-time jitter seed (0 = default 1)")
	faultsFlag := fs.String("faults", "",
		"arm seeded fault injection, e.g. seed=7,drop=0.02,corrupt=0.01")
	workersList := fs.String("workers", "",
		"comma-separated shard-advance worker counts to digest-compare (default 1,4)")
	requireTransition := fs.String("requiretransition", "",
		"exit nonzero unless this semantics' rule-3 transition depth is finite (CI gate)")
	jsonPath := fs.String("json", "", "write the full report as JSON to this path")
	parallel := fs.Int("parallel", 0,
		"worker goroutines for the harness; workload points fan across this many unless -pointworkers overrides (0 = leave default)")
	pointWorkers := fs.Int("pointworkers", 0,
		"goroutines for independent (semantics, depth, load) points — a different axis from -workers, which parallelizes inside one point's cluster (0 = adopt -parallel, 1 = serial)")
	noMemo := fs.Bool("nomemo", false, "disable the workload-point memo (later -workers runs recompute every point)")
	noRecycle := fs.Bool("norecycle", false, "disable cluster recycling (every point builds a fresh cluster)")
	minSpeedup := fs.Float64("minspeedup", 0,
		"also time the serial/cold regime and exit nonzero unless optimized/cold speedup meets this floor (CI gate)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel > 0 {
		experiments.SetParallelism(*parallel)
	}
	if *noMemo {
		workload.SetPointMemo(false)
		defer workload.SetPointMemo(true)
	}
	if *noRecycle {
		workload.SetClusterRecycling(false)
		defer workload.SetClusterRecycling(true)
	}

	cfg := experiments.WorkloadConfig{}
	cfg.PointWorkers = *pointWorkers
	cfg.CompareSerialCold = *minSpeedup > 0
	cfg.Scenario = *scenario
	cfg.Clients = *clients
	cfg.Ops = *ops
	cfg.MsgBytes = *msgBytes
	cfg.ThinkUS = *think
	cfg.Pipeline = *pipeline
	cfg.StreamMBps = *streamRate
	cfg.RTOUS = *rto
	cfg.Seed = *seed

	var err error
	if cfg.Semantics, err = parseSemanticsList(*semList); err != nil {
		return usageErrf(fs, stderr, "-semantics: %v", err)
	}
	if cfg.Depths, err = parseIntList(*depthList); err != nil {
		return usageErrf(fs, stderr, "-depths: %v", err)
	}
	if cfg.Loads, err = parseFloatList(*loadList); err != nil {
		return usageErrf(fs, stderr, "-loads: %v", err)
	}
	if cfg.Workers, err = parseIntList(*workersList); err != nil {
		return usageErrf(fs, stderr, "-workers: %v", err)
	}
	for _, w := range cfg.Workers {
		if w < 1 {
			return usageErrf(fs, stderr, "-workers: count %d < 1", w)
		}
	}
	if *faultsFlag != "" {
		spec, err := faults.ParseSpec(*faultsFlag)
		if err != nil {
			return usageErrf(fs, stderr, "-faults: %v", err)
		}
		if err := spec.Validate(); err != nil {
			return usageErrf(fs, stderr, "-faults: %v", err)
		}
		if !spec.Enabled() {
			return usageErrf(fs, stderr,
				"-faults: spec %q injects nothing (set a seed and at least one rate)", *faultsFlag)
		}
		cfg.Faults = spec
	}
	var gate core.Semantics
	if *requireTransition != "" {
		sems, err := parseSemanticsList(*requireTransition)
		if err != nil || len(sems) != 1 {
			return usageErrf(fs, stderr, "-requiretransition: want exactly one semantics name")
		}
		gate = sems[0]
	}

	rep, err := experiments.RunWorkload(cfg)
	if err != nil {
		// Config mistakes (unknown scenario, bad depth) are usage errors.
		return usageErrf(fs, stderr, "%v", err)
	}
	printWorkloadReport(stdout, rep)

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return failf(stderr, err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return failf(stderr, err)
		}
		fmt.Fprintf(stderr, "geniebench: wrote %s\n", *jsonPath)
	}

	fmt.Fprintf(stderr,
		"geniebench: workload perf: memo %d hits / %d misses / %d waits, clusters %d recycled / %d built\n",
		rep.Perf.WorkloadMemoHits, rep.Perf.WorkloadMemoMisses, rep.Perf.WorkloadMemoWaits,
		rep.Perf.ClustersRecycled, rep.Perf.ClustersBuilt)

	code := 0
	if !rep.Deterministic {
		fmt.Fprintf(stderr, "geniebench: FAIL: workload digests diverge across worker counts\n")
		code = 1
	}
	if *minSpeedup > 0 && rep.Speedup < *minSpeedup {
		fmt.Fprintf(stderr,
			"geniebench: FAIL: workload speedup %.2fx over serial cold, want >= %.2fx\n",
			rep.Speedup, *minSpeedup)
		code = 1
	}
	if *requireTransition != "" {
		s := rep.Result.Scheme(gate.String())
		if s == nil || s.TransitionDepth < 0 {
			got := -1
			if s != nil {
				got = s.TransitionDepth
			}
			fmt.Fprintf(stderr,
				"geniebench: FAIL: %q rule-3 transition depth = %d, want finite\n",
				gate.String(), got)
			code = 1
		}
	}
	return code
}

// printWorkloadReport renders the sweep: per-semantics operating points
// in canonical order, each scheme's transition verdict, then the
// per-worker-count digest lines proving (or refuting) determinism.
func printWorkloadReport(stdout io.Writer, rep *experiments.WorkloadReport) {
	res := rep.Result
	fmt.Fprintf(stdout, "workload %s: %d clients, %d ops/client, %d-byte messages\n",
		res.Scenario, res.Clients, res.Ops, res.MsgBytes)
	for _, s := range res.Schemes {
		for _, p := range s.Points {
			mode := "steady"
			if p.Bimodal {
				mode = "BIMODAL"
			}
			fmt.Fprintf(stdout,
				"workload %s: %-18s depth=%-3d load=%-4g %7.2f/%.2f MB/s  p50=%.0fus p95=%.0fus p99=%.0fus  ops=%d fail=%d shed=%d retx=%d drop=%d  kern=%dpg queue=%d  %s\n",
				res.Scenario, s.Semantics, p.Depth, p.Load,
				p.AchievedMBps, p.OfferedMBps,
				p.Latency.P50, p.Latency.P95, p.Latency.P99,
				p.Completed, p.Failed, p.Shed, p.Retransmits, p.Drops,
				p.KernelHWM, p.QueueHWM, mode)
		}
		if s.TransitionDepth >= 0 {
			fmt.Fprintf(stdout, "workload %s: %-18s rule-3 transition at depth %d\n",
				res.Scenario, s.Semantics, s.TransitionDepth)
		} else {
			fmt.Fprintf(stdout, "workload %s: %-18s no transition: every depth stays bimodal (queueing only delays blocking)\n",
				res.Scenario, s.Semantics)
		}
	}
	for _, r := range rep.Runs {
		fmt.Fprintf(stdout, "workload %s: workers=%d digest=%s ops=%d elapsed=%.3fs\n",
			res.Scenario, r.Workers, r.Digest, r.CompletedOps, r.ElapsedSec)
	}
	verdict := "bit-identical across worker counts"
	if !rep.Deterministic {
		verdict = "DIGESTS DIVERGE"
	}
	fmt.Fprintf(stdout, "workload %s: %s (GOMAXPROCS=%d, NumCPU=%d, point-workers=%d)\n",
		res.Scenario, verdict, rep.GOMAXPROCS, rep.NumCPU, rep.PointWorkers)
	if rep.SerialColdSec > 0 {
		fmt.Fprintf(stdout,
			"workload %s: serial cold %.3fs, optimized %.3fs, speedup %.2fx\n",
			res.Scenario, rep.SerialColdSec, rep.OptimizedSec, rep.Speedup)
	}
}
