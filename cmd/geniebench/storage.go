package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"flag"

	"repro/internal/blockdev"
	"repro/internal/experiments"
)

// runStorageCmd drives the storage-path study: sweep buffering
// semantics × I/O size × cache capacity × dirty threshold over the
// simulated block device + page cache, digest-compare the sweep at
// every -workers count, and report per-point CPU/latency, hit ratios,
// writeback bursts, and the copy-vs-move crossover on the read path.
// Exit status is nonzero on digest divergence, or when -requirecrossover
// is set and any cache configuration fails to locate a finite crossover.
func runStorageCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("geniebench storage", flag.ContinueOnError)
	fs.SetOutput(stderr)
	semList := fs.String("semantics", "",
		"comma-separated buffering semantics to sweep, e.g. copy,emulated-move (default all eight)")
	sizeList := fs.String("sizes", "",
		"comma-separated per-op I/O lengths in bytes (default 512,4096,16384,61440)")
	pageList := fs.String("cachepages", "",
		"comma-separated page-cache capacities in pages (default 8,64)")
	dirtyList := fs.String("dirty", "",
		"comma-separated dirty-page writeback thresholds, 0 = flush only on sync (default 0,4)")
	readAhead := fs.Int("readahead", 0, "page-cache read-ahead depth in pages")
	seek := fs.Float64("seek", 0, "device seek time in µs (0 = default 10000)")
	fixed := fs.Float64("fixed", 0, "device fixed per-op time in µs (0 = default 300)")
	perByte := fs.Float64("perbyte", 0, "device per-byte transfer time in µs (0 = default 0.1)")
	workersList := fs.String("workers", "",
		"comma-separated point-worker counts to digest-compare (default 1,4)")
	requireCrossover := fs.Bool("requirecrossover", false,
		"exit nonzero unless every cache configuration locates a finite copy-vs-move crossover (CI gate)")
	jsonPath := fs.String("json", "", "write the full report as JSON to this path")
	parallel := fs.Int("parallel", 0, "worker goroutines for the harness (0 = leave default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel > 0 {
		experiments.SetParallelism(*parallel)
	}

	cfg := experiments.StorageConfig{ReadAhead: *readAhead}
	if *seek != 0 || *fixed != 0 || *perByte != 0 {
		cfg.Disk = blockdev.Model{SeekUS: *seek, FixedUS: *fixed, PerByteUS: *perByte}
	}
	var err error
	if cfg.Semantics, err = parseSemanticsList(*semList); err != nil {
		return usageErrf(fs, stderr, "-semantics: %v", err)
	}
	if cfg.Sizes, err = parseIntList(*sizeList); err != nil {
		return usageErrf(fs, stderr, "-sizes: %v", err)
	}
	if cfg.CachePages, err = parseIntList(*pageList); err != nil {
		return usageErrf(fs, stderr, "-cachepages: %v", err)
	}
	if cfg.DirtyThresholds, err = parseIntList(*dirtyList); err != nil {
		return usageErrf(fs, stderr, "-dirty: %v", err)
	}
	if cfg.Workers, err = parseIntList(*workersList); err != nil {
		return usageErrf(fs, stderr, "-workers: %v", err)
	}
	for _, w := range cfg.Workers {
		if w < 1 {
			return usageErrf(fs, stderr, "-workers: count %d < 1", w)
		}
	}
	for _, n := range cfg.Sizes {
		if n < 1 {
			return usageErrf(fs, stderr, "-sizes: length %d < 1", n)
		}
	}

	rep, err := experiments.RunStorage(cfg)
	if err != nil {
		return failf(stderr, err)
	}
	printStorageReport(stdout, rep)

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return failf(stderr, err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return failf(stderr, err)
		}
		fmt.Fprintf(stderr, "geniebench: wrote %s\n", *jsonPath)
	}

	fmt.Fprintf(stderr,
		"geniebench: storage perf: memo %d hits / %d misses / %d waits, rigs %d recycled / %d built\n",
		rep.Perf.StorageMemoHits, rep.Perf.StorageMemoMisses, rep.Perf.StorageMemoWaits,
		rep.Perf.StorageRigsRecycled, rep.Perf.StorageRigsBuilt)

	code := 0
	if !rep.Deterministic {
		fmt.Fprintf(stderr, "geniebench: FAIL: storage digests diverge across worker counts\n")
		code = 1
	}
	if *requireCrossover {
		for _, x := range rep.Crossovers {
			if x.Bytes == 0 {
				fmt.Fprintf(stderr,
					"geniebench: FAIL: no finite copy-vs-move crossover for cache=%dpg threshold=%d\n",
					x.CachePages, x.DirtyThreshold)
				code = 1
			}
		}
		if len(rep.Crossovers) == 0 {
			fmt.Fprintf(stderr,
				"geniebench: FAIL: -requirecrossover needs copy and emulated-move in -semantics\n")
			code = 1
		}
	}
	return code
}

// printStorageReport renders the sweep: per-point lines in canonical
// order, the per-configuration crossovers, then the per-worker-count
// digest lines proving (or refuting) determinism.
func printStorageReport(stdout io.Writer, rep *experiments.StorageReport) {
	for _, p := range rep.Points {
		sf := ""
		if p.SendfileUS > 0 {
			sf = fmt.Sprintf(" sendfile=%.0fus", p.SendfileUS)
		}
		fmt.Fprintf(stdout,
			"storage: %-18s size=%-6d cache=%-3dpg dirty=%-2d read %7.2fus cpu / %9.1fus lat  write %7.2fus cpu / %9.1fus lat  hit=%4.1f%% wb=%d bursts=%d evict=%d seeks=%d%s\n",
			p.Sem, p.Size, p.CachePages, p.DirtyThreshold,
			p.ReadCPU, p.ReadLatency, p.WriteCPU, p.WriteLatency,
			100*p.HitRatio, p.Writebacks, p.Bursts, p.Evictions, p.DeviceSeeks, sf)
	}
	for _, x := range rep.Crossovers {
		if x.Bytes > 0 {
			fmt.Fprintf(stdout, "storage: cache=%dpg dirty=%d copy-vs-move read crossover at %d bytes\n",
				x.CachePages, x.DirtyThreshold, x.Bytes)
		} else {
			fmt.Fprintf(stdout, "storage: cache=%dpg dirty=%d no copy-vs-move crossover inside swept sizes\n",
				x.CachePages, x.DirtyThreshold)
		}
	}
	for _, r := range rep.Runs {
		fmt.Fprintf(stdout, "storage: workers=%d digest=%s points=%d elapsed=%.3fs\n",
			r.Workers, r.Digest, r.Points, r.ElapsedSec)
	}
	verdict := "bit-identical across worker counts"
	if !rep.Deterministic {
		verdict = "DIGESTS DIVERGE"
	}
	fmt.Fprintf(stdout, "storage: %s (GOMAXPROCS=%d, NumCPU=%d)\n",
		verdict, rep.GOMAXPROCS, rep.NumCPU)
}
