package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Cluster mode with a small configuration: must report bit-identical
// digests, write the JSON document, and exit 0 without a speedup gate.
func TestCLIClusterMode(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	code, stdout, stderr := runCLI(t,
		"-cluster", "-clusterhosts", "9", "-clusterrounds", "2",
		"-clusterbytes", "4096", "-clusterworkers", "1,2,4",
		"-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "cluster incast:") || !strings.Contains(stdout, "cluster ring:") {
		t.Fatalf("stdout missing workload reports:\n%s", stdout)
	}
	if !strings.Contains(stdout, "bit-identical across worker counts") {
		t.Fatalf("stdout missing determinism verdict:\n%s", stdout)
	}
	buf, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc clusterDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("bad JSON document: %v", err)
	}
	if doc.Incast == nil || doc.Ring == nil {
		t.Fatal("JSON document missing a workload report")
	}
	if !doc.Incast.Deterministic || !doc.Ring.Deterministic {
		t.Fatalf("determinism not recorded: %+v", doc)
	}
	if doc.Incast.Hosts != 9 || len(doc.Incast.Runs) != 3 {
		t.Fatalf("incast report = %+v", doc.Incast)
	}
	if doc.NumCPU < 1 || doc.GOMAXPROCS < 1 {
		t.Fatalf("environment not recorded: %+v", doc)
	}
}

// The speedup gate must fail the run when set impossibly high — this
// machine cannot beat 1000x — while the digest checks still pass.
func TestCLIClusterSpeedupGate(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-cluster", "-clusterhosts", "5", "-clusterrounds", "1",
		"-clusterworkers", "1,2", "-minclusterspeedup", "1000")
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "self-speedup") {
		t.Fatalf("stderr missing speedup failure:\n%s", stderr)
	}
}

// Bad cluster flag values exit 2 with usage.
func TestCLIClusterBadFlags(t *testing.T) {
	code, _, stderr := runCLI(t, "-cluster", "-clusterhosts", "1")
	if code != 2 || !strings.Contains(stderr, "-clusterhosts") {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	code, _, stderr = runCLI(t, "-cluster", "-clusterworkers", "1,zero")
	if code != 1 && code != 2 {
		t.Fatalf("exit code %d for bad worker list, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "clusterworkers") {
		t.Fatalf("stderr missing flag name:\n%s", stderr)
	}
}
