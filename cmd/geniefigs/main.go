// Command geniefigs renders the paper's latency and utilization figures
// as ASCII plots for a quick visual check of the curve shapes: the wide
// copy-vs-everything gap of Figure 3, move's zeroing penalty in
// Figure 5, and the three-band split of Figure 7.
//
// Usage:
//
//	geniefigs            # all figures
//	geniefigs -fig 3     # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	which := flag.Int("fig", 0, "figure to render (3, 4, 5, 6, 7; 0 = all)")
	flag.Parse()

	gens := map[int]func(experiments.Setup) (experiments.Figure, error){
		3: experiments.Figure3,
		4: experiments.Figure4,
		5: experiments.Figure5,
		6: experiments.Figure6,
		7: experiments.Figure7,
	}
	for _, id := range []int{3, 4, 5, 6, 7} {
		if *which != 0 && *which != id {
			continue
		}
		fig, err := gens[id](experiments.Setup{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "geniefigs:", err)
			os.Exit(1)
		}
		fig.Plot(os.Stdout, experiments.DefaultPlot)
		fmt.Println()
	}
}
