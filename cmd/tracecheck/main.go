// Command tracecheck validates a Chrome trace_event JSON file against
// the subset of the format this repo emits: well-formed JSON with a
// traceEvents array, every record carrying a name and a known phase,
// non-negative timestamps and durations, per-process monotonic
// non-decreasing timestamps, and balanced async begin/end pairs. CI
// runs it over geniebench -trace output so a malformed export fails the
// build instead of failing silently in the viewer.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// traceDoc is the object-format trace_event document.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// traceEvent is the subset of record fields the checks need.
type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
	Cat  string   `json:"cat"`
	ID   uint64   `json:"id"`
	S    string   `json:"s"`
}

var validPhases = map[string]bool{
	"X": true, // complete (requires dur)
	"i": true, // instant
	"b": true, // async begin
	"e": true, // async end
	"M": true, // metadata
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	buf, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		fail("not well-formed JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		fail("traceEvents is empty")
	}

	lastTs := map[int]float64{}   // per-pid monotonicity
	asyncOpen := map[string]int{} // (pid, cat, id, name) balance
	counts := map[string]int{}
	for i, ev := range doc.TraceEvents {
		where := func(msg string, args ...any) {
			fail("event %d (%q): %s", i, ev.Name, fmt.Sprintf(msg, args...))
		}
		if ev.Name == "" {
			fail("event %d: missing name", i)
		}
		if !validPhases[ev.Ph] {
			where("unknown phase %q", ev.Ph)
		}
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			where("missing ts/pid/tid")
		}
		counts[ev.Ph]++
		if ev.Ph == "M" {
			continue
		}
		if *ev.Ts < 0 {
			where("negative timestamp %g", *ev.Ts)
		}
		if prev, ok := lastTs[*ev.Pid]; ok && *ev.Ts < prev {
			where("timestamp %g precedes %g within pid %d", *ev.Ts, prev, *ev.Pid)
		}
		lastTs[*ev.Pid] = *ev.Ts
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				where("complete event without dur")
			}
			if *ev.Dur < 0 {
				where("negative duration %g", *ev.Dur)
			}
		case "b", "e":
			if ev.ID == 0 {
				where("async event without id")
			}
			key := fmt.Sprintf("%d/%s/%d/%s", *ev.Pid, ev.Cat, ev.ID, ev.Name)
			if ev.Ph == "b" {
				asyncOpen[key]++
			} else {
				asyncOpen[key]--
				if asyncOpen[key] < 0 {
					where("async end without matching begin (%s)", key)
				}
			}
		case "i":
			if ev.S != "" && ev.S != "t" && ev.S != "p" && ev.S != "g" {
				where("invalid instant scope %q", ev.S)
			}
		}
	}
	for key, n := range asyncOpen {
		if n != 0 {
			fail("unbalanced async span %s: %d unclosed begin(s)", key, n)
		}
	}
	fmt.Printf("tracecheck: %s OK — %d events (%d complete, %d instant, %d async pairs, %d metadata), %d process(es)\n",
		os.Args[1], len(doc.TraceEvents), counts["X"], counts["i"], counts["b"], counts["M"], len(lastTs))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
