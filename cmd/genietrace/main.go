// Command genietrace traces one datagram transfer through the
// structured event subsystem: it prints every emitted event — data
// passing charges with their stage and latency, VM faults and region
// transitions, adapter and link activity — then the critical-path
// breakdown whose spans sum to the end-to-end latency (the
// cycle-counter instrumentation of the paper's Section 8, as a tool).
//
// Usage:
//
//	genietrace -sem "emulated copy" -bytes 61440 -scheme early
//	genietrace -sem copy -bytes 2048 -scheme pooled -appoff 1000
//	genietrace -sem move -bytes 16384 -scheme pooled -chrome out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/trace"
)

func main() {
	semName := flag.String("sem", "emulated copy", "buffering semantics")
	length := flag.Int("bytes", 61440, "datagram length in bytes")
	scheme := flag.String("scheme", "early", "input buffering: early, pooled, outboard")
	devOff := flag.Int("devoff", 0, "device payload placement offset")
	appOff := flag.Int("appoff", 0, "application buffer page offset")
	chromePath := flag.String("chrome", "", "also write the trace as Chrome trace_event JSON to this path")
	flag.Parse()

	sem, ok := parseSemantics(*semName)
	if !ok {
		fmt.Fprintf(os.Stderr, "genietrace: unknown semantics %q; one of:", *semName)
		for _, s := range core.AllSemantics() {
			fmt.Fprintf(os.Stderr, " %q", s.String())
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	var buffering netsim.InputBuffering
	switch *scheme {
	case "early":
		buffering = netsim.EarlyDemux
	case "pooled":
		buffering = netsim.Pooled
	case "outboard":
		buffering = netsim.OutboardBuffering
	default:
		fmt.Fprintf(os.Stderr, "genietrace: unknown scheme %q (early, pooled, outboard)\n", *scheme)
		os.Exit(2)
	}

	ring := trace.NewRing(1 << 16)
	var sink trace.Sink = ring
	var chrome *trace.ChromeExporter
	if *chromePath != "" {
		chrome = trace.NewChromeExporter()
		chrome.SetProcess(1, fmt.Sprintf("%v %dB %v", sem, *length, buffering))
		sink = trace.Multi(ring, chrome)
	}
	s := experiments.Setup{
		Scheme:    buffering,
		DevOff:    *devOff,
		AppOffset: *appOff,
		Tracer:    trace.New(sink),
	}
	m, err := experiments.Measure(s, sem, *length)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genietrace:", err)
		os.Exit(1)
	}
	if ring.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "genietrace: ring overflowed, %d oldest events dropped\n", ring.Dropped())
	}
	events := ring.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	fmt.Printf("transfer: %v, %d bytes, %v buffering (%d events)\n\n",
		sem, *length, buffering, len(events))
	fmt.Printf("%10s %-6s %-4s %-10s %-40s %9s %12s\n",
		"at us", "host", "cat", "stage", "event", "bytes", "latency us")
	fmt.Println("-------------------------------------------------------------------------------------------------")
	var opTotal float64
	for _, ev := range events {
		switch ev.Phase {
		case trace.Begin, trace.End:
			// Operation boundaries are summarized below.
			continue
		}
		if stageSummary[ev.Name] {
			// Stage-level spans aggregate the charges already listed;
			// they appear in the critical path section instead.
			continue
		}
		lat := "-"
		if ev.Phase == trace.Complete {
			lat = fmt.Sprintf("%.2f", ev.Dur.Micros())
			if ev.Cat == trace.CatOp {
				opTotal += ev.Dur.Micros()
			}
		}
		fmt.Printf("%10.1f %-6s %-4s %-10s %-40s %9d %12s\n",
			float64(ev.At), ev.Host, ev.Cat, ev.Stage, ev.Name, ev.Bytes, lat)
	}
	fmt.Println("-------------------------------------------------------------------------------------------------")

	// The critical path: the spans that serialize end to end. Their
	// durations tile the interval between output start and input
	// completion exactly.
	critical := []string{"output.prepare", "net.tx", "net.deliver", "input.dispose"}
	var pathTotal float64
	fmt.Println("\ncritical path:")
	for _, name := range critical {
		for _, ev := range events {
			if ev.Phase == trace.Complete && ev.Name == name {
				fmt.Printf("  %-16s %12.2f us  (%s)\n", name, ev.Dur.Micros(), ev.Host)
				pathTotal += ev.Dur.Micros()
				break
			}
		}
	}
	fmt.Printf("  %-16s %12.2f us\n", "sum", pathTotal)

	fmt.Printf("\ntotal data passing CPU time          %12.2f us (both hosts, all stages)\n", opTotal)
	fmt.Printf("end-to-end latency                   %12.2f us\n", m.LatencyUS)
	fmt.Printf("equivalent throughput                %12.2f Mbps\n", m.ThroughputMbps())
	fmt.Printf("receiver CPU busy                    %12.2f us (%.1f%% utilization)\n",
		m.RxCPUUS, m.Utilization()*100)
	fmt.Printf("sender CPU busy                      %12.2f us\n", m.TxCPUUS)

	if chrome != nil {
		f, err := os.Create(*chromePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genietrace:", err)
			os.Exit(1)
		}
		if _, err := chrome.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "genietrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "genietrace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "genietrace: wrote %s (load in chrome://tracing or Perfetto)\n", *chromePath)
	}
}

// stageSummary marks the per-stage aggregate spans, which duplicate the
// individual charges in the table and belong to the critical path view.
var stageSummary = map[string]bool{
	"output.prepare": true,
	"output.dispose": true,
	"input.dispose":  true,
}

func parseSemantics(name string) (core.Semantics, bool) {
	for _, s := range core.AllSemantics() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}
