// Command genietrace traces one datagram transfer: it prints every
// primitive data passing operation with its stage and charged latency,
// then the end-to-end breakdown — the cycle-counter instrumentation of
// the paper's Section 8, as a tool.
//
// Usage:
//
//	genietrace -sem "emulated copy" -bytes 61440 -scheme early
//	genietrace -sem copy -bytes 2048 -scheme pooled -appoff 1000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netsim"
)

func main() {
	semName := flag.String("sem", "emulated copy", "buffering semantics")
	length := flag.Int("bytes", 61440, "datagram length in bytes")
	scheme := flag.String("scheme", "early", "input buffering: early, pooled, outboard")
	devOff := flag.Int("devoff", 0, "device payload placement offset")
	appOff := flag.Int("appoff", 0, "application buffer page offset")
	flag.Parse()

	sem, ok := parseSemantics(*semName)
	if !ok {
		fmt.Fprintf(os.Stderr, "genietrace: unknown semantics %q; one of:", *semName)
		for _, s := range core.AllSemantics() {
			fmt.Fprintf(os.Stderr, " %q", s.String())
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	var buffering netsim.InputBuffering
	switch *scheme {
	case "early":
		buffering = netsim.EarlyDemux
	case "pooled":
		buffering = netsim.Pooled
	case "outboard":
		buffering = netsim.OutboardBuffering
	default:
		fmt.Fprintf(os.Stderr, "genietrace: unknown scheme %q (early, pooled, outboard)\n", *scheme)
		os.Exit(2)
	}

	s := experiments.Setup{
		Scheme:     buffering,
		DevOff:     *devOff,
		AppOffset:  *appOff,
		Instrument: true,
	}
	m, err := experiments.Measure(s, sem, *length)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genietrace:", err)
		os.Exit(1)
	}

	fmt.Printf("transfer: %v, %d bytes, %v buffering\n\n", sem, *length, buffering)
	fmt.Printf("%10s %-10s %-46s %10s %12s\n", "at us", "stage", "operation", "bytes", "latency us")
	fmt.Println("--------------------------------------------------------------------------------------------")
	var opTotal float64
	for _, r := range m.Records {
		fmt.Printf("%10.1f %-10s %-46s %10d %12.2f\n",
			float64(r.At), r.Stage, r.Op, r.Bytes, r.Latency.Micros())
		opTotal += r.Latency.Micros()
	}
	fmt.Println("--------------------------------------------------------------------------------------------")
	fmt.Printf("total data passing CPU time          %12.2f us (both hosts, all stages)\n", opTotal)
	fmt.Printf("end-to-end latency                   %12.2f us\n", m.LatencyUS)
	fmt.Printf("equivalent throughput                %12.2f Mbps\n", m.ThroughputMbps())
	fmt.Printf("receiver CPU busy                    %12.2f us (%.1f%% utilization)\n",
		m.RxCPUUS, m.Utilization()*100)
	fmt.Printf("sender CPU busy                      %12.2f us\n", m.TxCPUUS)
}

func parseSemantics(name string) (core.Semantics, bool) {
	for _, s := range core.AllSemantics() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}
